//! Fully connected (dense) layer with explicit forward / backward passes.

use rand::Rng;

use crate::activation::Activation;
use crate::init::Initializer;
use crate::matrix::{Matrix, ShapeError};

/// A fully connected layer computing `a = activation(x W + b)`.
///
/// Inputs are batches of row vectors: an input of shape `batch x fan_in`
/// produces an output of shape `batch x fan_out`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    weights: Matrix,
    bias: Matrix,
    activation: Activation,
}

/// Values cached during the forward pass that the backward pass needs.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseCache {
    /// The layer input (`batch x fan_in`).
    pub input: Matrix,
    /// Pre-activation values `x W + b` (`batch x fan_out`).
    pub pre_activation: Matrix,
}

/// Gradients of the loss with respect to a dense layer's parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseGrads {
    /// Gradient w.r.t. the weight matrix (`fan_in x fan_out`).
    pub weights: Matrix,
    /// Gradient w.r.t. the bias row vector (`1 x fan_out`).
    pub bias: Matrix,
}

impl DenseGrads {
    /// A zero gradient with the same shapes as `layer`'s parameters.
    pub fn zeros_like(layer: &Dense) -> Self {
        Self {
            weights: Matrix::zeros(layer.fan_in(), layer.fan_out()),
            bias: Matrix::zeros(1, layer.fan_out()),
        }
    }

    /// Accumulates another gradient into this one (`self += other`).
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the gradient shapes differ.
    pub fn accumulate(&mut self, other: &DenseGrads) -> Result<(), ShapeError> {
        self.weights.axpy(1.0, &other.weights)?;
        self.bias.axpy(1.0, &other.bias)?;
        Ok(())
    }

    /// Scales the gradient in place.
    pub fn scale_inplace(&mut self, s: f64) {
        self.weights.map_inplace(|x| x * s);
        self.bias.map_inplace(|x| x * s);
    }

    /// Euclidean norm of the concatenated gradient (used for gradient clipping).
    pub fn norm(&self) -> f64 {
        (self.weights.frobenius_norm().powi(2) + self.bias.frobenius_norm().powi(2)).sqrt()
    }
}

impl Dense {
    /// Creates a new dense layer with random weights.
    pub fn new<R: Rng + ?Sized>(
        fan_in: usize,
        fan_out: usize,
        activation: Activation,
        initializer: Initializer,
        rng: &mut R,
    ) -> Self {
        Self {
            weights: initializer.sample(fan_in, fan_out, rng),
            bias: Matrix::zeros(1, fan_out),
            activation,
        }
    }

    /// Creates a layer from explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `bias` is not `1 x weights.cols()`.
    pub fn from_parameters(
        weights: Matrix,
        bias: Matrix,
        activation: Activation,
    ) -> Result<Self, ShapeError> {
        if bias.rows() != 1 || bias.cols() != weights.cols() {
            return Err(ShapeError {
                op: "dense_from_parameters",
                lhs: weights.shape(),
                rhs: bias.shape(),
            });
        }
        Ok(Self {
            weights,
            bias,
            activation,
        })
    }

    /// Number of input features.
    pub fn fan_in(&self) -> usize {
        self.weights.rows()
    }

    /// Number of output features.
    pub fn fan_out(&self) -> usize {
        self.weights.cols()
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Immutable view of the weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Immutable view of the bias row vector.
    pub fn bias(&self) -> &Matrix {
        &self.bias
    }

    /// Mutable access to the weight matrix (used by optimizers).
    pub fn weights_mut(&mut self) -> &mut Matrix {
        &mut self.weights
    }

    /// Mutable access to the bias row vector (used by optimizers).
    pub fn bias_mut(&mut self) -> &mut Matrix {
        &mut self.bias
    }

    /// Number of trainable scalars in the layer.
    pub fn parameter_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    /// Forward pass without caching (inference).
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `input.cols() != fan_in`.
    pub fn forward(&self, input: &Matrix) -> Result<Matrix, ShapeError> {
        let z = input.matmul(&self.weights)?.add_row_broadcast(&self.bias)?;
        Ok(self.activation.apply(&z))
    }

    /// Forward pass that also returns the cache required by [`Dense::backward`].
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `input.cols() != fan_in`.
    pub fn forward_train(&self, input: &Matrix) -> Result<(Matrix, DenseCache), ShapeError> {
        let pre = input.matmul(&self.weights)?.add_row_broadcast(&self.bias)?;
        let out = self.activation.apply(&pre);
        Ok((
            out,
            DenseCache {
                input: input.clone(),
                pre_activation: pre,
            },
        ))
    }

    /// Backward pass.
    ///
    /// `grad_output` is the gradient of the loss with respect to the layer's
    /// *activated* output (`batch x fan_out`). Returns the gradient with
    /// respect to the layer input together with the parameter gradients.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `grad_output` does not match the cached
    /// pre-activation shape.
    pub fn backward(
        &self,
        cache: &DenseCache,
        grad_output: &Matrix,
    ) -> Result<(Matrix, DenseGrads), ShapeError> {
        // dL/dz = dL/da * f'(z)
        let act_grad = self.activation.derivative(&cache.pre_activation);
        let grad_pre = grad_output.hadamard(&act_grad)?;
        // dL/dW = x^T (dL/dz), dL/db = column sums of dL/dz, dL/dx = (dL/dz) W^T
        let grad_weights = cache.input.transpose().matmul(&grad_pre)?;
        let grad_bias = grad_pre.sum_rows();
        let grad_input = grad_pre.matmul(&self.weights.transpose())?;
        Ok((
            grad_input,
            DenseGrads {
                weights: grad_weights,
                bias: grad_bias,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer() -> Dense {
        let w = Matrix::from_rows(&[&[0.5, -0.25], &[1.0, 0.75], &[-0.5, 0.1]]).unwrap();
        let b = Matrix::row_vector(&[0.1, -0.2]);
        Dense::from_parameters(w, b, Activation::Tanh).unwrap()
    }

    #[test]
    fn forward_shapes_and_values() {
        let l = layer();
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap();
        let y = l.forward(&x).unwrap();
        assert_eq!(y.shape(), (1, 2));
        // z0 = 1*0.5 + 2*1.0 + 3*(-0.5) + 0.1 = 1.1, z1 = -0.25 + 1.5 + 0.3 - 0.2 = 1.35
        assert!((y[(0, 0)] - 1.1_f64.tanh()).abs() < 1e-12);
        assert!((y[(0, 1)] - 1.35_f64.tanh()).abs() < 1e-12);
    }

    #[test]
    fn forward_rejects_wrong_input_width() {
        let l = layer();
        let x = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        assert!(l.forward(&x).is_err());
    }

    #[test]
    fn from_parameters_rejects_bad_bias() {
        let w = Matrix::zeros(2, 3);
        let b = Matrix::zeros(1, 2);
        assert!(Dense::from_parameters(w, b, Activation::Linear).is_err());
    }

    #[test]
    fn backward_matches_numerical_gradient() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut l = Dense::new(4, 3, Activation::Tanh, Initializer::XavierUniform, &mut rng);
        let x = Matrix::from_rows(&[&[0.3, -0.8, 1.2, 0.05], &[0.9, 0.1, -0.4, -1.0]]).unwrap();
        // Scalar loss: sum of outputs.
        let loss = |l: &Dense, x: &Matrix| l.forward(x).unwrap().sum();

        let (_, cache) = l.forward_train(&x).unwrap();
        let grad_out = Matrix::ones(2, 3);
        let (grad_input, grads) = l.backward(&cache, &grad_out).unwrap();

        let h = 1e-6;
        // Check weight gradients.
        for r in 0..l.fan_in() {
            for c in 0..l.fan_out() {
                let orig = l.weights()[(r, c)];
                l.weights_mut()[(r, c)] = orig + h;
                let up = loss(&l, &x);
                l.weights_mut()[(r, c)] = orig - h;
                let down = loss(&l, &x);
                l.weights_mut()[(r, c)] = orig;
                let numeric = (up - down) / (2.0 * h);
                assert!(
                    (numeric - grads.weights[(r, c)]).abs() < 1e-5,
                    "dW({r},{c}) numeric {numeric} analytic {}",
                    grads.weights[(r, c)]
                );
            }
        }
        // Check bias gradients.
        for c in 0..l.fan_out() {
            let orig = l.bias()[(0, c)];
            l.bias_mut()[(0, c)] = orig + h;
            let up = loss(&l, &x);
            l.bias_mut()[(0, c)] = orig - h;
            let down = loss(&l, &x);
            l.bias_mut()[(0, c)] = orig;
            let numeric = (up - down) / (2.0 * h);
            assert!((numeric - grads.bias[(0, c)]).abs() < 1e-5);
        }
        // Check input gradients.
        for r in 0..2 {
            for c in 0..4 {
                let mut xp = x.clone();
                xp[(r, c)] += h;
                let mut xm = x.clone();
                xm[(r, c)] -= h;
                let numeric = (loss(&l, &xp) - loss(&l, &xm)) / (2.0 * h);
                assert!((numeric - grad_input[(r, c)]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn grads_accumulate_and_scale() {
        let l = layer();
        let mut g = DenseGrads::zeros_like(&l);
        let mut g2 = DenseGrads::zeros_like(&l);
        g2.weights.map_inplace(|_| 2.0);
        g2.bias.map_inplace(|_| 4.0);
        g.accumulate(&g2).unwrap();
        g.scale_inplace(0.5);
        assert!(g
            .weights
            .as_slice()
            .iter()
            .all(|&x| (x - 1.0).abs() < 1e-12));
        assert!(g.bias.as_slice().iter().all(|&x| (x - 2.0).abs() < 1e-12));
        assert!(g.norm() > 0.0);
    }

    #[test]
    fn parameter_count_is_consistent() {
        let l = layer();
        assert_eq!(l.parameter_count(), 3 * 2 + 2);
    }
}
