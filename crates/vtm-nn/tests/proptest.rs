//! Randomized property tests of the linear-algebra and autodiff invariants.
//!
//! Originally written with `proptest`; the offline build has no access to
//! crates.io, so each property is checked over a fixed number of
//! pseudo-random cases drawn from a deterministically seeded generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vtm_nn::activation::Activation;
use vtm_nn::gradcheck::check_output_mean_gradient;
use vtm_nn::matrix::Matrix;
use vtm_nn::mlp::MlpConfig;

/// Runs `check` over `n` independent deterministic cases.
fn cases(n: usize, seed: u64, mut check: impl FnMut(&mut StdRng)) {
    for case in 0..n as u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        check(&mut rng);
    }
}

fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    let data: Vec<f64> = (0..rows * cols)
        .map(|_| rng.gen_range(-10.0..10.0))
        .collect();
    Matrix::from_vec(rows, cols, data).expect("sized data")
}

/// (A B) C == A (B C) within floating-point tolerance.
#[test]
fn matmul_is_associative() {
    cases(64, 0x31, |rng| {
        let a = random_matrix(rng, 3, 4);
        let b = random_matrix(rng, 4, 2);
        let c = random_matrix(rng, 2, 5);
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        assert!(left.approx_eq(&right, 1e-6));
    });
}

/// (A B)^T == B^T A^T.
#[test]
fn transpose_reverses_products() {
    cases(64, 0x32, |rng| {
        let a = random_matrix(rng, 3, 4);
        let b = random_matrix(rng, 4, 2);
        let left = a.matmul(&b).unwrap().transpose();
        let right = b.transpose().matmul(&a.transpose()).unwrap();
        assert!(left.approx_eq(&right, 1e-9));
    });
}

/// Matrix multiplication distributes over addition.
#[test]
fn matmul_distributes_over_addition() {
    cases(64, 0x33, |rng| {
        let a = random_matrix(rng, 3, 3);
        let b = random_matrix(rng, 3, 2);
        let c = random_matrix(rng, 3, 2);
        let left = a.matmul(&b.add_elem(&c).unwrap()).unwrap();
        let right = a
            .matmul(&b)
            .unwrap()
            .add_elem(&a.matmul(&c).unwrap())
            .unwrap();
        assert!(left.approx_eq(&right, 1e-8));
    });
}

/// Identity is neutral for multiplication on both sides.
#[test]
fn identity_is_neutral() {
    cases(64, 0x34, |rng| {
        let a = random_matrix(rng, 4, 4);
        let i = Matrix::identity(4);
        assert!(a.matmul(&i).unwrap().approx_eq(&a, 1e-12));
        assert!(i.matmul(&a).unwrap().approx_eq(&a, 1e-12));
    });
}

/// The Frobenius norm is absolutely homogeneous: ||sA|| = |s| ||A||.
#[test]
fn norm_is_homogeneous() {
    cases(64, 0x35, |rng| {
        let a = random_matrix(rng, 3, 3);
        let s = rng.gen_range(-5.0..5.0);
        let lhs = a.scale(s).frobenius_norm();
        let rhs = s.abs() * a.frobenius_norm();
        assert!((lhs - rhs).abs() < 1e-8);
    });
}

/// Activation derivatives agree with central finite differences.
#[test]
fn activation_derivatives_match_finite_differences() {
    cases(64, 0x36, |rng| {
        let z = rng.gen_range(-4.0..4.0);
        let h = 1e-6;
        for act in [
            Activation::Linear,
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::Softplus,
            Activation::LeakyRelu,
        ] {
            let numeric = (act.apply_scalar(z + h) - act.apply_scalar(z - h)) / (2.0 * h);
            assert!((numeric - act.derivative_scalar(z)).abs() < 1e-4);
        }
    });
}

/// Backpropagation through a randomly initialised tanh MLP matches
/// numerical gradients of the mean output.
#[test]
fn mlp_backprop_matches_numerical_gradient() {
    cases(64, 0x37, |rng| {
        let seed = rng.gen_range(0..500u64);
        let input: Vec<f64> = (0..3).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let mut net_rng = StdRng::seed_from_u64(seed);
        let net = MlpConfig::new(3, &[8], 2).build(&mut net_rng);
        let x = Matrix::row_vector(&input);
        let report = check_output_mean_gradient(&net, &x, 1e-6);
        assert!(report.passes(1e-4), "gradient check failed: {report:?}");
    });
}
