//! Property-based tests of the linear-algebra and autodiff invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use vtm_nn::activation::Activation;
use vtm_nn::gradcheck::check_output_mean_gradient;
use vtm_nn::matrix::Matrix;
use vtm_nn::mlp::MlpConfig;

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).expect("sized data"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (A B) C == A (B C) within floating-point tolerance.
    #[test]
    fn matmul_is_associative(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 2),
        c in matrix_strategy(2, 5),
    ) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-6));
    }

    /// (A B)^T == B^T A^T.
    #[test]
    fn transpose_reverses_products(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 2),
    ) {
        let left = a.matmul(&b).unwrap().transpose();
        let right = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    /// Matrix multiplication distributes over addition.
    #[test]
    fn matmul_distributes_over_addition(
        a in matrix_strategy(3, 3),
        b in matrix_strategy(3, 2),
        c in matrix_strategy(3, 2),
    ) {
        let left = a.matmul(&b.add_elem(&c).unwrap()).unwrap();
        let right = a.matmul(&b).unwrap().add_elem(&a.matmul(&c).unwrap()).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-8));
    }

    /// Identity is neutral for multiplication on both sides.
    #[test]
    fn identity_is_neutral(a in matrix_strategy(4, 4)) {
        let i = Matrix::identity(4);
        prop_assert!(a.matmul(&i).unwrap().approx_eq(&a, 1e-12));
        prop_assert!(i.matmul(&a).unwrap().approx_eq(&a, 1e-12));
    }

    /// The Frobenius norm is absolutely homogeneous: ||sA|| = |s| ||A||.
    #[test]
    fn norm_is_homogeneous(a in matrix_strategy(3, 3), s in -5.0f64..5.0) {
        let lhs = a.scale(s).frobenius_norm();
        let rhs = s.abs() * a.frobenius_norm();
        prop_assert!((lhs - rhs).abs() < 1e-8);
    }

    /// Activation derivatives agree with central finite differences.
    #[test]
    fn activation_derivatives_match_finite_differences(z in -4.0f64..4.0) {
        let h = 1e-6;
        for act in [
            Activation::Linear,
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::Softplus,
            Activation::LeakyRelu,
        ] {
            let numeric = (act.apply_scalar(z + h) - act.apply_scalar(z - h)) / (2.0 * h);
            prop_assert!((numeric - act.derivative_scalar(z)).abs() < 1e-4);
        }
    }

    /// Backpropagation through a randomly initialised tanh MLP matches
    /// numerical gradients of the mean output.
    #[test]
    fn mlp_backprop_matches_numerical_gradient(seed in 0u64..500, input in prop::collection::vec(-2.0f64..2.0, 3)) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = MlpConfig::new(3, &[8], 2).build(&mut rng);
        let x = Matrix::row_vector(&input);
        let report = check_output_mean_gradient(&net, &x, 1e-6);
        prop_assert!(report.passes(1e-4), "gradient check failed: {report:?}");
    }
}
