//! Gateway acceptance tests: the determinism contract (single-executor
//! greedy gateway ≡ direct `PricingService::quote_batch`, pinned by FNV
//! digests across batching configurations), micro-batch flush behaviour,
//! admission control and concurrent-ingress completeness.

use std::sync::Arc;
use std::time::Duration;

use vtm_gateway::{Gateway, GatewayConfig, GatewayError};
use vtm_rl::env::ActionSpace;
use vtm_rl::ppo::{PpoAgent, PpoConfig};
use vtm_rl::snapshot::PolicySnapshot;
use vtm_serve::{PricingService, Quote, QuoteRequest, ServiceConfig};

const HISTORY: usize = 4;
const FEATURES: usize = 2;

fn snapshot(seed: u64) -> PolicySnapshot {
    PpoAgent::new(
        PpoConfig::new(HISTORY * FEATURES, 1).with_seed(seed),
        ActionSpace::scalar(5.0, 50.0),
    )
    .snapshot()
}

fn service(snapshot: &PolicySnapshot) -> Arc<PricingService> {
    Arc::new(
        PricingService::from_snapshot(snapshot, ServiceConfig::new(HISTORY, FEATURES)).unwrap(),
    )
}

/// A service config under capacity and TTL pressure, so the determinism
/// contract is also exercised against eviction/expiry bookkeeping — state a
/// quote-only comparison would miss.
fn pressured_config() -> ServiceConfig {
    ServiceConfig::new(HISTORY, FEATURES)
        .with_shards(4)
        .with_session_capacity(3)
        .with_session_ttl(24)
}

/// The deterministic request stream both sides replay: `rounds` rounds of
/// one request per session with round/session-dependent features.
fn request_stream(rounds: usize, sessions: usize) -> Vec<Vec<QuoteRequest>> {
    (0..rounds)
        .map(|round| {
            (0..sessions)
                .map(|s| {
                    QuoteRequest::new(
                        s as u64,
                        (0..FEATURES)
                            .map(|f| ((round * 31 + s * 7 + f) % 13) as f64 / 13.0)
                            .collect(),
                    )
                })
                .collect()
        })
        .collect()
}

/// FNV-1a over a stream of 64-bit words (same style as the checkpoint and
/// scenario digest tests).
fn fnv_digest(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for word in words {
        hash ^= word;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn quotes_digest(quotes: &[Quote]) -> u64 {
    fnv_digest(quotes.iter().flat_map(|q| {
        std::iter::once(q.session)
            .chain(std::iter::once(q.warmed as u64))
            .chain(q.action.iter().map(|a| a.to_bits()))
    }))
}

/// What one gateway (or direct) replay of the stream produced: the quote
/// digest, the full service counters (sessions/quotes/evictions/expiries)
/// and the byte-identical service-state digest.
#[derive(Debug, PartialEq)]
struct RunOutcome {
    quotes_digest: u64,
    service_stats: vtm_serve::ServiceStats,
    state_digest: u64,
}

/// Replays the stream through a gateway (round by round, waiting each
/// round's tickets in submission order) over a fresh service built with
/// `service_config`, and captures the full outcome.
fn gateway_outcome(
    config: GatewayConfig,
    service_config: ServiceConfig,
    stream: &[Vec<QuoteRequest>],
) -> RunOutcome {
    let service = Arc::new(PricingService::from_snapshot(&snapshot(2), service_config).unwrap());
    let gateway = Gateway::start(Arc::clone(&service), config);
    let mut quotes = Vec::new();
    for round in stream {
        let tickets: Vec<_> = round
            .iter()
            .map(|req| gateway.submit(req.clone()).unwrap())
            .collect();
        for ticket in tickets {
            quotes.push(ticket.wait().unwrap());
        }
    }
    let stats = gateway.shutdown();
    assert_eq!(stats.completed, quotes.len() as u64);
    assert_eq!(stats.failed, 0);
    RunOutcome {
        quotes_digest: quotes_digest(&quotes),
        service_stats: service.stats(),
        state_digest: service.state_digest(),
    }
}

/// The acceptance criterion: with a single executor and greedy mode, a
/// gateway replay of a request sequence is indistinguishable from direct
/// `PricingService::quote_batch` calls — not just quote-for-quote, but in
/// the *complete* service state: session histories, LRU/TTL bookkeeping,
/// eviction and expiry counters — regardless of how the scheduler slices
/// the stream into micro-batches.
#[test]
fn single_executor_greedy_gateway_matches_quote_batch_digest() {
    // 13 sessions over 4 shards with capacity 3 and a TTL forces evictions
    // and expiries, so batch-slicing invariance of that bookkeeping is
    // exercised too (a quote-only comparison would miss divergence there).
    let stream = request_stream(6, 13);

    // Reference: direct caller-formed batches, no gateway.
    let reference =
        Arc::new(PricingService::from_snapshot(&snapshot(2), pressured_config()).unwrap());
    let mut reference_quotes = Vec::new();
    for round in &stream {
        reference_quotes.extend(reference.quote_batch(round).unwrap());
    }
    let reference_outcome = RunOutcome {
        quotes_digest: quotes_digest(&reference_quotes),
        service_stats: reference.stats(),
        state_digest: reference.state_digest(),
    };
    assert!(
        reference_outcome.service_stats.evicted > 0,
        "stream must trigger evictions for the comparison to be meaningful"
    );

    // Gateway under several batching configs: full outcomes must agree.
    for (max_batch, delay_us) in [(1, 0), (3, 200), (9, 1000), (64, 50)] {
        let config = GatewayConfig::default()
            .with_executors(1)
            .with_max_batch(max_batch)
            .with_max_delay(Duration::from_micros(delay_us));
        assert_eq!(
            gateway_outcome(config, pressured_config(), &stream),
            reference_outcome,
            "gateway (max_batch {max_batch}, delay {delay_us}us) diverged from quote_batch"
        );
    }
}

/// The same determinism contract holds on the quantized f32 serving path:
/// a single-executor greedy gateway over an f32 service is outcome-
/// identical (quotes, counters, state digest) to direct f32 `quote_batch`
/// calls, because the f32 kernels are batch-slicing invariant just like
/// the f64 ones. Telemetry names the precision it measured.
#[test]
fn single_executor_greedy_f32_gateway_matches_f32_quote_batch_digest() {
    use vtm_serve::Precision;

    let f32_config = || pressured_config().with_precision(Precision::F32);
    let stream = request_stream(6, 13);

    let reference = Arc::new(PricingService::from_snapshot(&snapshot(2), f32_config()).unwrap());
    let mut reference_quotes = Vec::new();
    for round in &stream {
        reference_quotes.extend(reference.quote_batch(round).unwrap());
    }
    let reference_outcome = RunOutcome {
        quotes_digest: quotes_digest(&reference_quotes),
        service_stats: reference.stats(),
        state_digest: reference.state_digest(),
    };
    assert!(reference_outcome.service_stats.evicted > 0);

    for (max_batch, delay_us) in [(1, 0), (9, 1000)] {
        let config = GatewayConfig::default()
            .with_executors(1)
            .with_max_batch(max_batch)
            .with_max_delay(Duration::from_micros(delay_us));
        assert_eq!(
            gateway_outcome(config, f32_config(), &stream),
            reference_outcome,
            "f32 gateway (max_batch {max_batch}) diverged from f32 quote_batch"
        );
    }

    // The precision mode is plumbed through to gateway telemetry.
    let service = Arc::new(PricingService::from_snapshot(&snapshot(2), f32_config()).unwrap());
    let gateway = Gateway::start(service, GatewayConfig::default());
    assert_eq!(gateway.telemetry().precision, "f32");
    let stats = gateway.shutdown();
    assert_eq!(stats.precision, "f32");
    assert!(stats.to_json().contains("\"precision\": \"f32\""));
}

/// A full batch flushes immediately — well before a long deadline.
#[test]
fn full_batches_flush_before_the_deadline() {
    let gateway = Gateway::start(
        service(&snapshot(3)),
        GatewayConfig::default()
            .with_max_batch(4)
            .with_max_delay(Duration::from_secs(30)),
    );
    let stream = request_stream(1, 8);
    let tickets: Vec<_> = stream[0]
        .iter()
        .map(|r| gateway.submit(r.clone()).unwrap())
        .collect();
    for ticket in tickets {
        let quote = ticket
            .wait_timeout(Duration::from_secs(10))
            .expect("full batches must flush without waiting for the 30s deadline")
            .unwrap();
        assert!(quote.price() >= 5.0 && quote.price() <= 50.0);
    }
    let stats = gateway.shutdown();
    assert_eq!(stats.completed, 8);
    assert!(
        stats.batches >= 2,
        "8 requests at max_batch 4 need >= 2 batches"
    );
    assert!(stats.max_batch_size <= 4);
}

/// An under-full batch flushes when `max_delay` fires.
#[test]
fn deadline_flushes_partial_batches() {
    let gateway = Gateway::start(
        service(&snapshot(4)),
        GatewayConfig::default()
            .with_max_batch(64)
            .with_max_delay(Duration::from_millis(2)),
    );
    let stream = request_stream(1, 3);
    let tickets: Vec<_> = stream[0]
        .iter()
        .map(|r| gateway.submit(r.clone()).unwrap())
        .collect();
    for ticket in tickets {
        assert!(ticket
            .wait_timeout(Duration::from_secs(10))
            .expect("deadline must flush a 3-request batch long before 64 accumulate")
            .is_ok());
    }
    let stats = gateway.shutdown();
    assert_eq!(stats.completed, 3);
    assert!(stats.batches >= 1);
    assert!(stats.mean_batch_size <= 3.0);
    assert_eq!(stats.queue_depth, 0);
}

/// Admission control: once `queue_capacity` requests are in flight,
/// further submissions are rejected with backpressure, not queued.
#[test]
fn admission_control_rejects_beyond_capacity() {
    // A huge batch threshold plus a long deadline parks admitted requests
    // in the forming batch, keeping them in flight deterministically.
    let gateway = Gateway::start(
        service(&snapshot(5)),
        GatewayConfig::default()
            .with_max_batch(64)
            .with_max_delay(Duration::from_secs(30))
            .with_queue_capacity(2),
    );
    let stream = request_stream(1, 3);
    let _a = gateway.submit(stream[0][0].clone()).unwrap();
    let _b = gateway.submit(stream[0][1].clone()).unwrap();
    match gateway.submit(stream[0][2].clone()) {
        Err(GatewayError::Overloaded { queue_capacity }) => assert_eq!(queue_capacity, 2),
        other => panic!("expected Overloaded, got {other:?}"),
    }
    let stats = gateway.shutdown(); // drains the two admitted requests
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.queue_depth, 0);
}

/// Malformed requests are rejected at the door with a typed error and
/// never consume queue capacity.
#[test]
fn bad_feature_blocks_are_rejected_at_submit() {
    let gateway = Gateway::start(service(&snapshot(6)), GatewayConfig::default());
    match gateway.submit(QuoteRequest::new(11, vec![0.0; 5])) {
        Err(GatewayError::BadFeatureBlock {
            session,
            expected,
            got,
        }) => {
            assert_eq!((session, expected, got), (11, FEATURES, 5));
        }
        other => panic!("expected BadFeatureBlock, got {other:?}"),
    }
    let stats = gateway.shutdown();
    assert_eq!(stats.submitted, 0);
    assert_eq!(stats.rejected, 0, "malformed requests are not backpressure");
}

/// Submissions after shutdown fail with the typed ShutDown error.
#[test]
fn submit_after_shutdown_is_a_typed_error() {
    let service = service(&snapshot(7));
    let gateway = Gateway::start(Arc::clone(&service), GatewayConfig::default());
    let request = request_stream(1, 1)[0][0].clone();
    assert!(gateway.quote(request.clone()).is_ok());
    drop(gateway);
    // A fresh gateway on the same (still warm) service works fine.
    let gateway = Gateway::start(service, GatewayConfig::default());
    assert!(gateway.quote(request).is_ok());
}

/// Many concurrent ingress threads, several executors: every admitted
/// request completes exactly once and the telemetry books balance.
#[test]
fn concurrent_ingress_threads_complete_everything() {
    let gateway = Arc::new(Gateway::start(
        service(&snapshot(8)),
        GatewayConfig::default()
            .with_max_batch(16)
            .with_max_delay(Duration::from_micros(200))
            .with_executors(2)
            .with_queue_capacity(4096),
    ));
    const THREADS: usize = 4;
    const PER_THREAD: usize = 50;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let gateway = Arc::clone(&gateway);
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    let session = (t * PER_THREAD + i) as u64;
                    let quote = gateway
                        .quote(QuoteRequest::new(session, vec![0.25, 0.75]))
                        .unwrap();
                    assert_eq!(quote.session, session);
                }
            });
        }
    });
    let stats = Arc::into_inner(gateway)
        .expect("all clients done")
        .shutdown();
    assert_eq!(stats.submitted, (THREADS * PER_THREAD) as u64);
    assert_eq!(stats.completed, (THREADS * PER_THREAD) as u64);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.queue_depth, 0);
    assert!(stats.batches > 0);
    assert!(stats.latency_p99_us >= stats.latency_p50_us);
}
