//! End-to-end journal/replay equivalence: a journaling gateway run must be
//! reconstructible — byte-identical service state — from (a) the journal
//! alone, (b) a mid-run snapshot alone, and (c) the latest snapshot plus
//! the journal suffix; and all of them must equal a direct
//! `PricingService::quote_batch` replay of the same admission sequence.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use vtm_gateway::{Gateway, GatewayConfig};
use vtm_journal::{
    find_latest_snapshot, find_snapshots, replay_journal, scan_journal, JournalOptions,
    ReplayOptions, ScanMode, StateSnapshot,
};
use vtm_rl::env::ActionSpace;
use vtm_rl::ppo::{PpoAgent, PpoConfig};
use vtm_rl::snapshot::PolicySnapshot;
use vtm_serve::{PricingService, QuoteRequest, ServiceConfig};

const HISTORY: usize = 3;
const FEATURES: usize = 2;

fn policy(seed: u64) -> PolicySnapshot {
    PpoAgent::new(
        PpoConfig::new(HISTORY * FEATURES, 1).with_seed(seed),
        ActionSpace::scalar(5.0, 50.0),
    )
    .snapshot()
}

/// Capacity and TTL pressure so replay must also reconstruct eviction and
/// expiry bookkeeping, not just request histories.
fn service_config() -> ServiceConfig {
    ServiceConfig::new(HISTORY, FEATURES)
        .with_shards(4)
        .with_session_capacity(3)
        .with_session_ttl(20)
}

fn fresh_service(snap: &PolicySnapshot) -> PricingService {
    PricingService::from_snapshot(snap, service_config()).unwrap()
}

fn requests(total: usize) -> Vec<QuoteRequest> {
    (0..total)
        .map(|i| {
            QuoteRequest::new(
                (i % 17) as u64,
                vec![((i * 7) % 13) as f64 / 13.0, ((i * 3) % 5) as f64 / 5.0],
            )
        })
        .collect()
}

fn temp_journal(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("vtm_gw_replay_{tag}_{}.vtmj", std::process::id()))
}

fn cleanup(journal: &PathBuf) {
    for (_, path) in find_snapshots(journal) {
        let _ = std::fs::remove_file(path);
    }
    let _ = std::fs::remove_file(journal);
}

/// Runs a single-executor journaling gateway over `reqs` (submitted from
/// one thread, so admission order is the submission order) and returns the
/// live service's final state digest.
fn journaled_gateway_run(journal: &PathBuf, snap: &PolicySnapshot, reqs: &[QuoteRequest]) -> u64 {
    let service = Arc::new(fresh_service(snap));
    let gateway = Gateway::try_start(
        Arc::clone(&service),
        GatewayConfig::default()
            .with_executors(1)
            .with_max_batch(8)
            .with_max_delay(Duration::from_micros(200))
            .with_journal(
                JournalOptions::new(journal)
                    .with_flush_every(4)
                    .with_snapshot_every(25),
            ),
    )
    .unwrap();
    let tickets: Vec<_> = reqs
        .iter()
        .map(|r| gateway.submit(r.clone()).unwrap())
        .collect();
    for ticket in tickets {
        ticket.wait().unwrap();
    }
    let stats = gateway.shutdown();
    assert_eq!(stats.completed, reqs.len() as u64);
    assert_eq!(stats.journal_frames, reqs.len() as u64);
    assert!(stats.journal_bytes > 0);
    assert!(
        stats.snapshots >= 1,
        "80 requests at snapshot_every=25 must produce periodic snapshots"
    );
    service.state_digest()
}

#[test]
fn gateway_journal_replays_to_identical_state_from_every_starting_point() {
    let snap = policy(61);
    let reqs = requests(80);
    let journal = temp_journal("equivalence");
    let live_digest = journaled_gateway_run(&journal, &snap, &reqs);

    // The journal holds exactly the admission sequence.
    let scanned = scan_journal(&journal, ScanMode::Strict).unwrap();
    assert_eq!(scanned.frames.len(), reqs.len());
    for (frame, req) in scanned.frames.iter().zip(&reqs) {
        assert_eq!(
            &frame.request, req,
            "journaled frame differs from submission"
        );
    }

    // (0) Direct quote_batch over the same sequence — the ground truth the
    // gateway determinism contract pins everything else to.
    let direct = fresh_service(&snap);
    direct.quote_batch(&reqs).unwrap();
    assert_eq!(direct.state_digest(), live_digest);

    // (a) Replay from genesis (empty state).
    let from_empty = fresh_service(&snap);
    let report = replay_journal(&from_empty, &journal, None, &ReplayOptions::default()).unwrap();
    assert_eq!(report.frames_applied, 80);
    assert_eq!(report.state_digest, live_digest);

    // (b) A mid-run snapshot alone reproduces its own prefix exactly.
    let snapshots = find_snapshots(&journal);
    assert!(!snapshots.is_empty());
    let (frames, path) = &snapshots[0];
    let mid = StateSnapshot::load_from(path).unwrap();
    assert_eq!(mid.frames_applied, *frames);
    let prefix_reference = fresh_service(&snap);
    prefix_reference
        .quote_batch(&reqs[..*frames as usize])
        .unwrap();
    let from_snapshot_only = fresh_service(&snap);
    mid.restore_into(&from_snapshot_only).unwrap();
    assert_eq!(
        from_snapshot_only.state_digest(),
        prefix_reference.state_digest(),
        "snapshot state differs from a direct replay of its prefix"
    );

    // (c) Latest snapshot + journal suffix reaches the same final state.
    let (latest_frames, latest_path) = find_latest_snapshot(&journal).unwrap();
    let latest = StateSnapshot::load_from(&latest_path).unwrap();
    let resumed = fresh_service(&snap);
    let report =
        replay_journal(&resumed, &journal, Some(&latest), &ReplayOptions::default()).unwrap();
    assert_eq!(report.start_seq, latest_frames);
    assert_eq!(report.frames_applied, 80 - latest_frames);
    assert_eq!(report.state_digest, live_digest);

    cleanup(&journal);
}

/// A second journaling run over the same stream produces a byte-identical
/// journal — the audit trail itself is deterministic.
#[test]
fn journaling_is_deterministic_across_runs() {
    let snap = policy(62);
    let reqs = requests(40);
    let journal_a = temp_journal("deterministic_a");
    let journal_b = temp_journal("deterministic_b");
    let digest_a = journaled_gateway_run(&journal_a, &snap, &reqs);
    let digest_b = journaled_gateway_run(&journal_b, &snap, &reqs);
    assert_eq!(digest_a, digest_b);
    assert_eq!(
        std::fs::read(&journal_a).unwrap(),
        std::fs::read(&journal_b).unwrap(),
        "two runs over the same stream wrote different journals"
    );
    cleanup(&journal_a);
    cleanup(&journal_b);
}

/// Journal creation failure surfaces as a typed error from `try_start`,
/// and `journal_frames` telemetry stays zero without journaling.
#[test]
fn journal_failures_and_disabled_journaling_are_clean() {
    let snap = policy(63);
    let service = Arc::new(fresh_service(&snap));
    // A journal path inside a nonexistent directory cannot be created.
    let bad = std::env::temp_dir()
        .join(format!("vtm_gw_replay_missing_dir_{}", std::process::id()))
        .join("requests.vtmj");
    match Gateway::try_start(
        Arc::clone(&service),
        GatewayConfig::default().with_journal(JournalOptions::new(&bad)),
    ) {
        Err(vtm_gateway::GatewayError::Journal(msg)) => assert!(!msg.is_empty()),
        other => panic!("expected GatewayError::Journal, got {other:?}"),
    }
    // Without journaling the new counters stay zero.
    let gateway = Gateway::start(service, GatewayConfig::default());
    gateway.quote(QuoteRequest::new(1, vec![0.5, 0.5])).unwrap();
    let stats = gateway.shutdown();
    assert_eq!(stats.journal_frames, 0);
    assert_eq!(stats.journal_bytes, 0);
    assert_eq!(stats.snapshots, 0);
    let json = stats.to_json();
    assert!(json.contains("\"journal\""));
}
