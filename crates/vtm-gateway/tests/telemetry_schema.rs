//! Golden-file schema tests for the telemetry exposition surfaces.
//!
//! The JSON shape of [`TelemetrySnapshot::to_json`] and the Prometheus text
//! exposition of [`TelemetrySnapshot::register_metrics`] are consumed
//! outside this crate (results files, dashboards, the SLO gate), so their
//! exact rendering is pinned against committed golden files in
//! `tests/golden/`. Regenerate with `UPDATE_GOLDENS=1 cargo test -p
//! vtm-gateway --test telemetry_schema` after an intentional schema change
//! and review the diff.

use std::path::PathBuf;

use vtm_gateway::{StageSnapshot, Telemetry, TelemetrySnapshot};
use vtm_obs::{HistogramSnapshot, JsonValue, LogHistogram, MetricsRegistry};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Compares `rendered` against the committed golden file, or rewrites it
/// when `UPDATE_GOLDENS=1` is set.
fn assert_golden(name: &str, rendered: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        rendered,
        expected,
        "schema drift against {} — if intentional, regenerate with UPDATE_GOLDENS=1",
        path.display()
    );
}

fn hist(samples: &[u64]) -> HistogramSnapshot {
    let h = LogHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h.snapshot()
}

/// A fully-populated snapshot with deterministic values in every field.
fn golden_snapshot() -> TelemetrySnapshot {
    let mut snap = Telemetry::new().snapshot();
    snap.submitted = 120;
    snap.completed = 100;
    snap.rejected = 10;
    snap.failed = 4;
    snap.expired = 3;
    snap.shed = 2;
    snap.degraded_quotes = 5;
    snap.panics = 1;
    snap.restarts = 1;
    snap.watchdog_fires = 1;
    snap.journal_retries = 2;
    snap.journal_bypassed = 3;
    snap.precision = "f64";
    snap.shard = 2;
    snap.batches = 40;
    snap.queue_depth = 3;
    snap.journal_frames = 117;
    snap.journal_bytes = 9360;
    snap.snapshots = 1;
    let latency = hist(&[100, 100, 200, 400, 800, 1600]);
    snap.latency_p50_us = latency.p50_us();
    snap.latency_p95_us = latency.p95_us();
    snap.latency_p99_us = latency.p99_us();
    snap.latency_mean_us = latency.mean_us();
    snap.latency_max_us = latency.max_us;
    snap.latency_buckets = latency.buckets;
    snap.mean_batch_size = 3.0;
    snap.max_batch_size = 8;
    snap.batch_size_buckets[0] = 10;
    snap.batch_size_buckets[2] = 20;
    snap.batch_size_buckets[7] = 10;
    snap.journal_append_mean_us = 12.5;
    snap.journal_append_max_us = 90;
    snap.stages = Some(StageSnapshot {
        traced: 6,
        queue_wait: hist(&[10, 20, 30, 40, 50, 60]),
        batch_form: hist(&[5, 5, 5, 5, 5, 5]),
        inference: hist(&[80, 80, 160, 160, 320, 320]),
        resolve: hist(&[2, 2, 2, 2, 2, 2]),
        journal_append: hist(&[12, 12, 12, 14, 14, 14]),
    });
    snap
}

/// The JSON rendering is byte-stable, parses with the workspace parser and
/// exposes the documented paths.
#[test]
fn telemetry_snapshot_json_matches_golden() {
    let json = golden_snapshot().to_json();
    assert_golden("telemetry_snapshot.json", &json);

    let parsed = JsonValue::parse(&json).expect("snapshot JSON must parse");
    for path in [
        "submitted",
        "faults.expired",
        "faults.watchdog_fires",
        "journal.bypassed",
        "journal.append_mean_us",
        "latency_us.p99",
        "stages.traced",
        "stages.queue_wait.p50_us",
        "stages.journal_append.count",
        "batch_size.mean",
    ] {
        assert!(
            parsed.path(path).and_then(JsonValue::as_f64).is_some(),
            "path `{path}` missing or non-numeric in {json}"
        );
    }
    // "inf" alone would match the "inference" stage key; a non-finite
    // numeric value renders as `: inf` / `: NaN`.
    assert!(!json.contains("NaN") && !json.contains(": inf"), "{json}");
}

/// The zeroed snapshot (tracing off, nothing recorded) also renders
/// stably — and never leaks NaN from 0/0 means.
#[test]
fn zeroed_snapshot_json_matches_golden() {
    let json = Telemetry::new().snapshot().to_json();
    assert_golden("telemetry_snapshot_zero.json", &json);
    let parsed = JsonValue::parse(&json).expect("zeroed snapshot JSON must parse");
    assert!(parsed.path("stages").is_some());
    assert!(!json.contains("NaN") && !json.contains(": inf"), "{json}");
}

/// The Prometheus text exposition is byte-stable: family ordering, label
/// rendering, cumulative `le` buckets and the stage-labelled histograms.
#[test]
fn prometheus_exposition_matches_golden() {
    let mut registry = MetricsRegistry::new();
    golden_snapshot().register_metrics(&mut registry, &[("shard", "2")]);
    let text = registry.render_text();
    assert_golden("telemetry_metrics.prom", &text);
    assert!(
        text.contains("# TYPE vtm_gateway_latency_us histogram"),
        "{text}"
    );
    assert!(
        text.contains("vtm_gateway_stage_us_count{shard=\"2\",stage=\"inference\"} 6"),
        "{text}"
    );
    assert!(text.ends_with('\n'), "exposition must end with a newline");
    assert!(!text.contains("NaN"), "{text}");
}
