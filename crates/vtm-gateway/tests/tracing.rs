//! Acceptance tests for end-to-end request tracing: the logical-clock
//! stage-decomposition identity, sampling determinism, ring-buffer wrap and
//! the tracing-disabled fast path.

use std::sync::Arc;

use vtm_gateway::{Gateway, GatewayConfig, TracerConfig};
use vtm_journal::JournalOptions;
use vtm_rl::env::ActionSpace;
use vtm_rl::ppo::{PpoAgent, PpoConfig};
use vtm_serve::{PricingService, QuoteRequest, ServiceConfig};

const HISTORY: usize = 4;
const FEATURES: usize = 2;

fn service() -> Arc<PricingService> {
    let agent = PpoAgent::new(
        PpoConfig::new(HISTORY * FEATURES, 1).with_seed(17),
        ActionSpace::scalar(5.0, 50.0),
    );
    Arc::new(
        PricingService::from_snapshot(&agent.snapshot(), ServiceConfig::new(HISTORY, FEATURES))
            .unwrap(),
    )
}

fn request(round: usize, session: u64) -> QuoteRequest {
    QuoteRequest::new(
        session,
        (0..FEATURES)
            .map(|f| ((round * 31 + session as usize * 7 + f) % 13) as f64 / 13.0)
            .collect(),
    )
}

/// In logical-clock mode the telescoping identity holds *exactly* for every
/// record: admission + queue_wait + batch_form + inference + resolve ==
/// resolved - admit. Serial submit → wait additionally pins each stage to
/// one tick, so the decomposition is bit-reproducible.
#[test]
fn logical_clock_decomposition_is_exact_and_deterministic() {
    let run = || {
        let gateway = Gateway::start(
            service(),
            GatewayConfig::default().with_tracing(
                TracerConfig::default()
                    .with_sample_every(1)
                    .with_logical_clock(true),
            ),
        );
        for round in 0..4 {
            for session in 0..8u64 {
                gateway
                    .submit(request(round, session))
                    .unwrap()
                    .wait()
                    .unwrap();
            }
        }
        let records = gateway.trace_records();
        let snapshot = gateway.shutdown();
        (records, snapshot)
    };
    let (records, snapshot) = run();
    assert_eq!(records.len(), 32);
    for record in &records {
        let stages = record.stages();
        assert_eq!(
            stages.admission_us
                + stages.queue_wait_us
                + stages.batch_form_us
                + stages.inference_us
                + stages.resolve_us,
            stages.total_us,
            "identity violated for {record:?}"
        );
        assert_eq!(
            stages.total_us, 5,
            "serial run must cost 5 ticks: {record:?}"
        );
        assert_eq!(record.batch_size(), 1);
    }
    let stage_snapshot = snapshot.stages.expect("tracing was enabled");
    assert_eq!(stage_snapshot.traced, 32);
    assert_eq!(stage_snapshot.inference.count, 32);
    // Journal disabled → the journal stage never fires.
    assert_eq!(stage_snapshot.journal_append.count, 0);

    // The whole decomposition — not just the identity — reproduces.
    let (again, _) = run();
    let stamps: Vec<_> = records
        .iter()
        .map(|r| (r.admit_us, r.resolved_us))
        .collect();
    let stamps_again: Vec<_> = again.iter().map(|r| (r.admit_us, r.resolved_us)).collect();
    assert_eq!(stamps, stamps_again);
}

/// 1-in-N sampling picks the same deterministic subset of trace ids on
/// every run, and the stage histograms only fold in the sampled requests.
#[test]
fn sampling_is_deterministic_and_counts_only_sampled() {
    let run = || {
        let gateway = Gateway::start(
            service(),
            GatewayConfig::default().with_tracing(
                TracerConfig::default()
                    .with_sample_every(4)
                    .with_logical_clock(true),
            ),
        );
        for round in 0..4 {
            for session in 0..16u64 {
                gateway
                    .submit(request(round, session))
                    .unwrap()
                    .wait()
                    .unwrap();
            }
        }
        let ids: Vec<u64> = gateway.trace_records().iter().map(|r| r.trace_id).collect();
        let (published, dropped) = gateway.trace_counters();
        let snapshot = gateway.shutdown();
        (ids, published, dropped, snapshot.stages.unwrap().traced)
    };
    let (ids, published, dropped, traced) = run();
    assert!(!ids.is_empty() && ids.len() < 64, "got {}", ids.len());
    assert_eq!(published, ids.len() as u64);
    assert_eq!(dropped, 0);
    assert_eq!(traced, published);
    for id in &ids {
        assert_eq!(id % 4, 0, "unsampled id {id:#x} leaked into the ring");
    }
    let (ids_again, ..) = run();
    assert_eq!(ids, ids_again);
}

/// The trace ring keeps the newest records once it wraps, and the publish
/// counter keeps counting past the capacity.
#[test]
fn trace_ring_wraps_keeping_newest() {
    let gateway = Gateway::start(
        service(),
        GatewayConfig::default().with_tracing(
            TracerConfig::default()
                .with_sample_every(1)
                .with_capacity(8)
                .with_logical_clock(true),
        ),
    );
    for round in 0..4 {
        for session in 0..8u64 {
            gateway
                .submit(request(round, session))
                .unwrap()
                .wait()
                .unwrap();
        }
    }
    let records = gateway.trace_records();
    let (published, _) = gateway.trace_counters();
    assert_eq!(published, 32);
    assert_eq!(records.len(), 8);
    // Serial submission: the surviving records are the last eight admitted.
    let mut seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
    seqs.sort_unstable();
    assert_eq!(seqs, (24..32).collect::<Vec<u64>>());
    gateway.shutdown();
}

/// With tracing off (the default) the trace surface is inert: no records,
/// no stage snapshot, no counters — and the request path never pays for it.
#[test]
fn tracing_disabled_is_inert() {
    let gateway = Gateway::start(service(), GatewayConfig::default());
    for session in 0..8u64 {
        gateway.submit(request(0, session)).unwrap().wait().unwrap();
    }
    assert!(gateway.trace_records().is_empty());
    assert!(gateway.stage_snapshot().is_none());
    assert_eq!(gateway.trace_counters(), (0, 0));
    let snapshot = gateway.shutdown();
    assert!(snapshot.stages.is_none());
    assert!(snapshot.to_json().contains("\"stages\": null"));
}

/// With a journal attached, traced records carry the journal sub-stage and
/// it nests inside admission (journal lock wait + append ≤ admit→enqueue).
#[test]
fn journal_stage_nests_inside_admission() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("vtm_trace_journal_{}.vtmj", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let gateway = Gateway::start(
        service(),
        GatewayConfig::default()
            .with_journal(JournalOptions::new(&path))
            .with_tracing(
                TracerConfig::default()
                    .with_sample_every(1)
                    .with_logical_clock(true),
            ),
    );
    for session in 0..8u64 {
        gateway.submit(request(0, session)).unwrap().wait().unwrap();
    }
    let records = gateway.trace_records();
    let snapshot = gateway.shutdown();
    assert_eq!(records.len(), 8);
    for record in &records {
        assert!(
            record.journal_start_us > 0,
            "journal stage missing: {record:?}"
        );
        let stages = record.stages();
        assert!(
            stages.journal_append_us <= stages.admission_us,
            "{record:?}"
        );
    }
    let stage_snapshot = snapshot.stages.expect("tracing was enabled");
    assert_eq!(stage_snapshot.journal_append.count, 8);
    // The writer-internal append latency surfaced too (wall-clock, so only
    // sanity-checkable: it was measured for all eight appends).
    assert!(snapshot.journal_append_mean_us >= 0.0);
    assert_eq!(snapshot.journal_frames, 8);
    let _ = std::fs::remove_file(&path);
}
