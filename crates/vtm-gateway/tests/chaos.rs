//! Fixed-seed chaos suite: deterministic fault plans injected into a live
//! gateway, asserting the liveness invariant (every submitted ticket
//! resolves — no `wait` hangs), exact fault telemetry (`panics`,
//! `restarts`, `shed`, `expired`, `degraded_quotes`, journal counters) and
//! journal/replay equivalence under partial failure.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use vtm_gateway::{
    FaultPlan, Gateway, GatewayConfig, GatewayError, HealthConfig, JournalBypassPolicy,
};
use vtm_journal::{scan_journal, JournalOptions, ScanMode};
use vtm_rl::env::ActionSpace;
use vtm_rl::ppo::{PpoAgent, PpoConfig};
use vtm_rl::snapshot::PolicySnapshot;
use vtm_serve::{PricingService, QuoteRequest, ServiceConfig};

const HISTORY: usize = 3;
const FEATURES: usize = 2;

fn policy(seed: u64) -> PolicySnapshot {
    PpoAgent::new(
        PpoConfig::new(HISTORY * FEATURES, 1).with_seed(seed),
        ActionSpace::scalar(5.0, 50.0),
    )
    .snapshot()
}

fn fresh_service(snap: &PolicySnapshot) -> Arc<PricingService> {
    Arc::new(PricingService::from_snapshot(snap, ServiceConfig::new(HISTORY, FEATURES)).unwrap())
}

fn requests(total: usize) -> Vec<QuoteRequest> {
    (0..total)
        .map(|i| {
            QuoteRequest::new(
                (i % 5) as u64,
                vec![((i * 7) % 13) as f64 / 13.0, ((i * 3) % 5) as f64 / 5.0],
            )
        })
        .collect()
}

fn temp_journal(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("vtm_gw_chaos_{tag}_{}.vtmj", std::process::id()))
}

fn cleanup(journal: &PathBuf) {
    let _ = std::fs::remove_file(journal);
}

/// Polls `cond` until it holds or `timeout` elapses; returns the final
/// evaluation (async fault handling — supervisor respawns, watchdog fires —
/// settles within milliseconds, but never at an exact instant).
fn eventually(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if cond() {
            return true;
        }
        if Instant::now() >= deadline {
            return cond();
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// The reference for digest comparisons: the same requests priced directly,
/// one call per request (≡ a fault-free single-executor gateway).
fn reference_digest(snap: &PolicySnapshot, reqs: &[QuoteRequest]) -> u64 {
    let service = fresh_service(snap);
    for req in reqs {
        service.quote_batch(std::slice::from_ref(req)).unwrap();
    }
    service.state_digest()
}

/// A single-request-batch gateway: with `max_batch == 1` and sequential
/// waited submission, batch index N is exactly request N, so fault plans
/// target specific requests deterministically.
fn serial_config() -> GatewayConfig {
    GatewayConfig::default()
        .with_executors(1)
        .with_max_batch(1)
        .with_max_delay(Duration::from_micros(100))
}

/// Executor panic mid-run: only the panicked batch's ticket fails, the
/// supervisor respawns the executor, and every later request completes.
#[test]
fn executor_panic_fails_only_its_batch_and_is_respawned() {
    let snap = policy(71);
    let service = fresh_service(&snap);
    let gateway = Gateway::start(
        Arc::clone(&service),
        serial_config().with_faults(FaultPlan::new(1).with_executor_panic(2)),
    );
    let reqs = requests(6);
    let mut completed = 0u64;
    for (i, req) in reqs.iter().enumerate() {
        let result = gateway
            .submit(req.clone())
            .unwrap()
            .wait_timeout(Duration::from_secs(30))
            .expect("liveness: every ticket must resolve under an executor panic");
        if i == 2 {
            assert_eq!(result, Err(GatewayError::ExecutorFailed), "request {i}");
        } else {
            assert_eq!(result.unwrap().session, req.session, "request {i}");
            completed += 1;
        }
    }
    assert!(
        eventually(Duration::from_secs(10), || gateway.telemetry().restarts
            == 1),
        "supervisor must respawn the panicked executor exactly once"
    );
    let stats = gateway.shutdown();
    assert_eq!(stats.panics, 1);
    assert_eq!(stats.restarts, 1);
    assert_eq!(stats.completed, completed);
    assert_eq!(stats.completed, 5);
    assert_eq!(stats.failed, 1);
    assert_eq!(
        stats.queue_depth, 0,
        "every admission slot must be released"
    );
    // The panicked request was never priced: the live state equals the
    // reference with request 2 removed.
    let mut survived = reqs.clone();
    survived.remove(2);
    assert_eq!(service.state_digest(), reference_digest(&snap, &survived));
}

/// A deadline storm: every queued request expires before batch formation;
/// all tickets resolve with `DeadlineExceeded` and nothing is priced.
#[test]
fn deadline_storm_expires_every_request_with_exact_counters() {
    let service = fresh_service(&policy(72));
    let gateway = Gateway::start(
        Arc::clone(&service),
        GatewayConfig::default()
            .with_executors(1)
            .with_max_batch(32)
            .with_max_delay(Duration::from_millis(1))
            .with_default_deadline(Duration::ZERO),
    );
    let tickets: Vec<_> = requests(6)
        .into_iter()
        .map(|req| gateway.submit(req).unwrap())
        .collect();
    for ticket in tickets {
        let result = ticket
            .wait_timeout(Duration::from_secs(30))
            .expect("liveness: expired tickets must still resolve");
        assert_eq!(result, Err(GatewayError::DeadlineExceeded));
    }
    assert!(
        eventually(Duration::from_secs(10), || gateway.telemetry().expired == 6),
        "scheduler must expire all six requests"
    );
    let stats = gateway.shutdown();
    assert_eq!(stats.expired, 6);
    assert_eq!(stats.completed, 0);
    assert_eq!(stats.failed, 0, "expiry is not a failure");
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(service.stats().quotes, 0, "expired work is never priced");
}

/// Deadline-aware `wait`: the caller unblocks at the deadline even while
/// the request is still parked in the forming batch, and the pipeline
/// expires the request on its own afterwards — nothing leaks.
#[test]
fn wait_unblocks_at_the_deadline_before_the_pipeline_resolves() {
    let gateway = Gateway::start(
        fresh_service(&policy(73)),
        GatewayConfig::default()
            .with_max_batch(64)
            .with_max_delay(Duration::from_millis(300))
            .with_default_deadline(Duration::from_millis(30)),
    );
    let ticket = gateway.submit(requests(1).pop().unwrap()).unwrap();
    let started = Instant::now();
    assert_eq!(ticket.wait(), Err(GatewayError::DeadlineExceeded));
    assert!(
        started.elapsed() < Duration::from_millis(250),
        "wait must unblock at the 30ms deadline, not the 300ms flush"
    );
    assert!(
        eventually(Duration::from_secs(10), || gateway.telemetry().expired == 1),
        "the scheduler must expire the parked request on its own"
    );
    let stats = gateway.shutdown();
    assert_eq!(
        (stats.expired, stats.completed, stats.queue_depth),
        (1, 0, 0)
    );
}

/// Journal append failure under `FailStop`: the request is rejected and
/// un-admitted, the journal records exactly the successful admissions, and
/// replaying it reproduces the live state bit-for-bit.
#[test]
fn journal_failstop_rejects_the_request_and_keeps_replay_exact() {
    let snap = policy(74);
    let journal = temp_journal("failstop");
    cleanup(&journal);
    let service = fresh_service(&snap);
    let gateway = Gateway::try_start(
        Arc::clone(&service),
        serial_config()
            .with_journal(JournalOptions::new(&journal))
            .with_journal_retries(0)
            .with_faults(FaultPlan::new(2).with_journal_error(2, std::io::ErrorKind::StorageFull)),
    )
    .unwrap();
    let reqs = requests(8);
    let mut admitted = Vec::new();
    for (i, req) in reqs.iter().enumerate() {
        match gateway.submit(req.clone()) {
            Ok(ticket) => {
                ticket
                    .wait_timeout(Duration::from_secs(30))
                    .expect("liveness under journal faults")
                    .unwrap();
                admitted.push(req.clone());
            }
            Err(GatewayError::Journal(msg)) => {
                assert_eq!(i, 2, "only append attempt 2 is injected");
                assert!(!msg.is_empty());
            }
            Err(other) => panic!("unexpected error: {other:?}"),
        }
    }
    let stats = gateway.shutdown();
    assert_eq!(admitted.len(), 7);
    assert_eq!(stats.submitted, 7, "a fail-stopped request is un-admitted");
    assert_eq!(stats.completed, 7);
    assert_eq!(stats.journal_frames, 7);
    assert_eq!(stats.journal_retries, 0);
    assert_eq!(stats.journal_bypassed, 0);
    // The journal holds exactly the admitted requests, in admission order,
    // and replays to the live state.
    let scanned = scan_journal(&journal, ScanMode::Strict).unwrap();
    let frames: Vec<QuoteRequest> = scanned.frames.into_iter().map(|f| f.request).collect();
    assert_eq!(frames, admitted);
    assert_eq!(service.state_digest(), reference_digest(&snap, &frames));
    cleanup(&journal);
}

/// Journal append failure under `DegradeWithoutJournal`: quotes keep
/// flowing, the bypass is counted, and the (incomplete) journal still
/// replays exactly the frames it recorded.
#[test]
fn journal_bypass_keeps_quotes_flowing_with_an_audited_gap() {
    let snap = policy(75);
    let journal = temp_journal("bypass");
    cleanup(&journal);
    let service = fresh_service(&snap);
    let gateway = Gateway::try_start(
        Arc::clone(&service),
        serial_config()
            .with_journal(JournalOptions::new(&journal))
            .with_journal_retries(0)
            .with_journal_policy(JournalBypassPolicy::DegradeWithoutJournal)
            .with_faults(FaultPlan::new(3).with_journal_error(2, std::io::ErrorKind::WouldBlock)),
    )
    .unwrap();
    let reqs = requests(8);
    for req in &reqs {
        gateway
            .submit(req.clone())
            .unwrap()
            .wait_timeout(Duration::from_secs(30))
            .expect("liveness under journal bypass")
            .unwrap();
    }
    let stats = gateway.shutdown();
    assert_eq!(stats.completed, 8, "bypass must not lose the request");
    assert_eq!(stats.journal_bypassed, 1);
    assert_eq!(stats.journal_frames, 7);
    // Live state includes the bypassed request; the journal does not — the
    // audit gap is real, but what the journal *does* record replays
    // bit-for-bit.
    let scanned = scan_journal(&journal, ScanMode::Strict).unwrap();
    let frames: Vec<QuoteRequest> = scanned.frames.into_iter().map(|f| f.request).collect();
    let mut journaled = reqs.clone();
    journaled.remove(2);
    assert_eq!(frames, journaled);
    assert_eq!(service.state_digest(), reference_digest(&snap, &reqs));
    assert_eq!(
        reference_digest(&snap, &frames),
        reference_digest(&snap, &journaled)
    );
    assert_ne!(service.state_digest(), reference_digest(&snap, &frames));
    cleanup(&journal);
}

/// Bounded retry heals transient journal errors: two injected failures are
/// absorbed by one retry each, every frame lands, and the digest matches a
/// fault-free run.
#[test]
fn journal_retries_heal_transient_errors_without_losing_frames() {
    let snap = policy(76);
    let journal = temp_journal("healing");
    cleanup(&journal);
    let service = fresh_service(&snap);
    let gateway = Gateway::try_start(
        Arc::clone(&service),
        serial_config()
            .with_journal(JournalOptions::new(&journal))
            .with_journal_retries(2)
            .with_journal_backoff(Duration::from_micros(50))
            .with_faults(
                FaultPlan::new(4)
                    .with_journal_error(2, std::io::ErrorKind::Interrupted)
                    .with_journal_error(5, std::io::ErrorKind::WouldBlock),
            ),
    )
    .unwrap();
    let reqs = requests(8);
    for req in &reqs {
        gateway
            .submit(req.clone())
            .unwrap()
            .wait_timeout(Duration::from_secs(30))
            .expect("liveness under healed journal faults")
            .unwrap();
    }
    let stats = gateway.shutdown();
    // Attempts 0,1 ok; attempt 2 (request 2) fails once, heals on attempt
    // 3; attempt 4 ok; attempt 5 (request 4) fails once, heals on 6.
    assert_eq!(stats.journal_retries, 2);
    assert_eq!(stats.journal_bypassed, 0);
    assert_eq!(stats.journal_frames, 8);
    assert_eq!(stats.completed, 8);
    let scanned = scan_journal(&journal, ScanMode::Strict).unwrap();
    assert_eq!(scanned.frames.len(), 8);
    assert_eq!(service.state_digest(), reference_digest(&snap, &reqs));
    cleanup(&journal);
}

/// Scheduler death: the watchdog fails every stranded ticket with a typed
/// error instead of hanging them, and later submissions are rejected.
#[test]
fn watchdog_fails_pending_tickets_when_the_scheduler_dies() {
    let service = fresh_service(&policy(77));
    let gateway = Gateway::start(
        Arc::clone(&service),
        GatewayConfig::default()
            .with_executors(1)
            .with_supervisor_poll(Duration::from_millis(1))
            .with_faults(FaultPlan::new(5).with_scheduler_panic(0)),
    );
    // The scheduler panics on its very first iteration, before draining
    // anything; these submissions land in the ingress queue.
    let tickets: Vec<_> = requests(3)
        .into_iter()
        .filter_map(|req| gateway.submit(req).ok())
        .collect();
    for ticket in &tickets {
        let result = ticket
            .wait_timeout(Duration::from_secs(30))
            .expect("liveness: the watchdog must resolve stranded tickets");
        assert_eq!(result, Err(GatewayError::SchedulerStalled));
    }
    assert!(
        eventually(Duration::from_secs(10), || {
            gateway.telemetry().watchdog_fires == 1
        }),
        "the watchdog must fire exactly once"
    );
    assert!(matches!(
        gateway.submit(requests(1).pop().unwrap()),
        Err(GatewayError::SchedulerStalled)
    ));
    let stats = gateway.shutdown();
    assert_eq!(stats.watchdog_fires, 1);
    assert_eq!(stats.failed, tickets.len() as u64);
    assert_eq!(stats.completed, 0);
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(service.stats().quotes, 0);
}

/// Shutdown under a dead executor pool: queued batches that can no longer
/// be priced are failed with `ShuttingDown` — and a ticket that already
/// timed out in `wait_timeout` stays waitable and receives that error too
/// (the wait-timeout-leak satellite).
#[test]
fn shutdown_sweeps_stranded_batches_with_a_typed_error() {
    let service = fresh_service(&policy(78));
    let gateway = Gateway::start(
        Arc::clone(&service),
        serial_config()
            // A poll far beyond the test horizon: the dead executor stays
            // dead, so batches 1 and 2 are stranded until shutdown.
            .with_supervisor_poll(Duration::from_secs(600))
            .with_faults(FaultPlan::new(6).with_executor_panic(0)),
    );
    let tickets: Vec<_> = requests(3)
        .into_iter()
        .map(|req| gateway.submit(req).unwrap())
        .collect();
    assert_eq!(
        tickets[0]
            .wait_timeout(Duration::from_secs(30))
            .expect("the panicked batch must fail its own ticket"),
        Err(GatewayError::ExecutorFailed)
    );
    // A timed-out wait does not consume or leak the ticket…
    assert_eq!(tickets[1].wait_timeout(Duration::from_millis(5)), None);
    let stats = gateway.shutdown();
    assert_eq!(stats.panics, 1);
    assert_eq!(stats.restarts, 0, "supervisor never polled");
    assert_eq!(stats.completed, 0);
    assert_eq!(stats.failed, 3);
    assert_eq!(stats.queue_depth, 0);
    // …shutdown resolves it (and the never-waited one) with the typed
    // sweep error.
    for ticket in &tickets[1..] {
        assert_eq!(
            ticket.wait_timeout(Duration::from_secs(1)),
            Some(Err(GatewayError::ShuttingDown))
        );
    }
}

/// Depth-driven shedding: once the queue depth fraction crosses the
/// threshold, submissions are rejected with a positive retry hint and no
/// admission slot is consumed.
#[test]
fn depth_crossing_sheds_submissions_with_a_retry_hint() {
    let service = fresh_service(&policy(79));
    let gateway = Gateway::start(
        Arc::clone(&service),
        GatewayConfig::default()
            .with_executors(1)
            // Park admitted requests in the forming batch.
            .with_max_batch(64)
            .with_max_delay(Duration::from_secs(30))
            .with_queue_capacity(8)
            .with_health(HealthConfig::default().with_shed_depth(0.5)),
    );
    let reqs = requests(6);
    for req in &reqs[..4] {
        gateway.submit(req.clone()).unwrap();
    }
    // Depth 4 of capacity 8 crosses the 0.5 shed threshold.
    for req in &reqs[4..] {
        match gateway.submit(req.clone()) {
            Err(GatewayError::Shed { retry_after_us }) => assert!(retry_after_us > 0),
            other => panic!("expected Shed, got {other:?}"),
        }
    }
    let stats = gateway.shutdown(); // flushes and prices the parked four
    assert_eq!(stats.shed, 2);
    assert_eq!(stats.submitted, 4, "shed requests never consume a slot");
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.queue_depth, 0);
}

/// The full degradation ladder on the latency signal: a severe p99 breach
/// jumps straight to Degraded (cached quotes, unknown sessions shed), and
/// calm observations walk the ladder back down one state at a time.
#[test]
fn severe_latency_degrades_to_cached_quotes_then_recovers_stepwise() {
    let snap = policy(80);
    let service = fresh_service(&snap);
    let gateway = Gateway::start(
        Arc::clone(&service),
        serial_config()
            // The first four batches each take ~20ms: far beyond 8x the
            // 1µs SLO, so the first evaluated window is severe.
            .with_faults(FaultPlan::new(7).with_batch_delay(Duration::from_millis(20), 4))
            .with_health(
                HealthConfig::default()
                    .with_p99_slo_us(Some(1))
                    .with_shed_depth(10.0)
                    .with_degrade_depth(10.0)
                    .with_recovery_observations(2),
            ),
    );
    let session = 1u64;
    let features = || vec![0.25, 0.75];
    // Four slow completions build the latency window (and the session's
    // last-quote cache).
    let mut last_fresh = None;
    for _ in 0..4 {
        let quote = gateway
            .submit(QuoteRequest::new(session, features()))
            .unwrap()
            .wait_timeout(Duration::from_secs(30))
            .expect("slow batches still complete")
            .unwrap();
        assert!(!quote.degraded);
        last_fresh = Some(quote);
    }
    // Observation 5 evaluates the 4-completion window: severe → Degraded →
    // answered from the cache without pricing.
    let cached = gateway
        .submit(QuoteRequest::new(session, features()))
        .unwrap()
        .wait_timeout(Duration::from_secs(5))
        .expect("degraded quotes resolve immediately")
        .unwrap();
    assert!(cached.degraded);
    assert_eq!(cached.action, last_fresh.unwrap().action);
    // A session with no cached quote is shed instead (calm observation 1:
    // the idle pipeline cleared the sticky severe signal).
    assert!(matches!(
        gateway.submit(QuoteRequest::new(999, features())),
        Err(GatewayError::Shed { .. })
    ));
    // Calm observation 2 steps Degraded → Shedding; observation 1 of the
    // next streak holds it there.
    for _ in 0..2 {
        assert!(matches!(
            gateway.submit(QuoteRequest::new(session, features())),
            Err(GatewayError::Shed { .. })
        ));
    }
    // Calm observation 2 of the second streak steps Shedding → Healthy:
    // the request is admitted and priced for real again.
    let recovered = gateway
        .submit(QuoteRequest::new(session, features()))
        .unwrap()
        .wait_timeout(Duration::from_secs(30))
        .expect("recovered gateway prices normally")
        .unwrap();
    assert!(!recovered.degraded);
    let stats = gateway.shutdown();
    assert_eq!(stats.degraded_quotes, 1);
    assert_eq!(stats.shed, 3);
    assert_eq!(stats.completed, 5, "4 slow + 1 recovered");
    assert_eq!(
        service.stats().quotes,
        5,
        "cached quotes never touch the service"
    );
}

/// A fault plan with nothing armed changes nothing: the run is equivalent
/// to a fault-free gateway, bit-for-bit.
#[test]
fn empty_fault_plan_is_behaviourally_invisible() {
    let snap = policy(81);
    let reqs = requests(12);
    let service = fresh_service(&snap);
    let gateway = Gateway::start(
        Arc::clone(&service),
        serial_config().with_faults(FaultPlan::new(99)),
    );
    for req in &reqs {
        gateway
            .submit(req.clone())
            .unwrap()
            .wait_timeout(Duration::from_secs(30))
            .expect("liveness")
            .unwrap();
    }
    let stats = gateway.shutdown();
    assert_eq!(stats.completed, 12);
    assert_eq!(
        (stats.panics, stats.restarts, stats.expired, stats.shed),
        (0, 0, 0, 0)
    );
    assert_eq!(service.state_digest(), reference_digest(&snap, &reqs));
}
