//! The gateway's three-state health controller: Healthy → Shedding →
//! Degraded, driven by queue depth and the live latency histogram.
//!
//! The controller is evaluated on the submit path (one short mutex hold per
//! submission — the scheduler may legitimately block inside its batch drain,
//! so it cannot drive health decisions). Two signals feed it:
//!
//! * **queue depth** — the admission gauge as a fraction of
//!   `queue_capacity`; crossing [`HealthConfig::shed_depth`] targets
//!   Shedding, crossing [`HealthConfig::degrade_depth`] targets Degraded;
//! * **latency** — the cumulative completion histogram is differenced
//!   against the last evaluated window; once at least [`MIN_WINDOW`] new
//!   completions accumulate, the window's p99 (bucket upper bound) is
//!   compared to [`HealthConfig::p99_slo_us`]: above the SLO targets
//!   Shedding, above [`SEVERE_SLO_FACTOR`]× the SLO targets Degraded. The
//!   signal is *sticky* between windows and is cleared by a calm window or
//!   by an idle pipeline (nothing queued, nothing completing).
//!
//! Escalation is immediate; recovery is hysteretic: the controller steps
//! *down* one state only after [`HealthConfig::recovery_observations`]
//! consecutive calm observations, so a gateway hovering at a threshold does
//! not flap between serving and shedding.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

use crate::telemetry::{percentile_from_buckets, LATENCY_BUCKETS};

/// Minimum completions in a histogram delta before its p99 is trusted.
pub(crate) const MIN_WINDOW: u64 = 4;

/// A windowed p99 above `SEVERE_SLO_FACTOR * p99_slo_us` targets Degraded
/// directly instead of Shedding.
pub(crate) const SEVERE_SLO_FACTOR: u64 = 8;

/// The gateway's degradation ladder, most to least healthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum HealthState {
    /// Normal operation: every well-formed request is admitted and priced.
    #[default]
    Healthy,
    /// Overload: new submissions are rejected with
    /// [`GatewayError::Shed`](crate::GatewayError::Shed) carrying a
    /// `retry_after` hint, and already-expired queued work is dropped.
    Shedding,
    /// Severe overload: submissions are answered from the session-local
    /// last-quote cache (marked `degraded`) instead of being priced;
    /// sessions without a cached quote are shed.
    Degraded,
}

impl HealthState {
    /// Stable lowercase label (used in telemetry JSON).
    pub fn as_str(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Shedding => "shedding",
            HealthState::Degraded => "degraded",
        }
    }

    fn from_u8(raw: u8) -> Self {
        match raw {
            2 => HealthState::Degraded,
            1 => HealthState::Shedding,
            _ => HealthState::Healthy,
        }
    }

    fn step_down(self) -> Self {
        match self {
            HealthState::Degraded => HealthState::Shedding,
            _ => HealthState::Healthy,
        }
    }
}

/// Thresholds and hysteresis of the [`HealthState`] ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthConfig {
    /// Queue-depth fraction of `queue_capacity` at which Shedding begins
    /// (values above 1.0 effectively disable depth-driven shedding).
    pub shed_depth: f64,
    /// Queue-depth fraction of `queue_capacity` at which Degraded begins.
    pub degrade_depth: f64,
    /// p99 completion-latency SLO in microseconds (compared against bucket
    /// upper bounds, so it is conservative by at most 2×); `None` disables
    /// the latency signal.
    pub p99_slo_us: Option<u64>,
    /// Consecutive calm observations required before stepping down one
    /// state (clamped ≥ 1).
    pub recovery_observations: u32,
}

impl Default for HealthConfig {
    /// Shed at 75 % depth, degrade at 95 %, no latency SLO, step down
    /// after 8 calm observations.
    fn default() -> Self {
        Self {
            shed_depth: 0.75,
            degrade_depth: 0.95,
            p99_slo_us: None,
            recovery_observations: 8,
        }
    }
}

impl HealthConfig {
    /// Overrides the Shedding depth fraction (clamped ≥ 0).
    pub fn with_shed_depth(mut self, fraction: f64) -> Self {
        self.shed_depth = fraction.max(0.0);
        self
    }

    /// Overrides the Degraded depth fraction (clamped ≥ 0).
    pub fn with_degrade_depth(mut self, fraction: f64) -> Self {
        self.degrade_depth = fraction.max(0.0);
        self
    }

    /// Sets the p99 latency SLO in microseconds (`None` = depth only).
    pub fn with_p99_slo_us(mut self, slo_us: Option<u64>) -> Self {
        self.p99_slo_us = slo_us;
        self
    }

    /// Overrides the step-down hysteresis (clamped ≥ 1).
    pub fn with_recovery_observations(mut self, observations: u32) -> Self {
        self.recovery_observations = observations.max(1);
        self
    }
}

/// Sticky latency evaluation state plus the recovery streak, all under one
/// short-lived mutex (the lock-free `state` cell is the published output).
#[derive(Debug)]
struct HealthWindow {
    /// The cumulative histogram at the last evaluated window boundary.
    last_buckets: Vec<u64>,
    /// Last evaluated window blew the SLO (sticky between windows).
    latency_hot: bool,
    /// Last evaluated window blew the SLO by [`SEVERE_SLO_FACTOR`]×.
    latency_severe: bool,
    /// Consecutive observations whose instantaneous target was below the
    /// current state.
    calm_streak: u32,
}

/// The live controller: one per gateway, evaluated per submission.
#[derive(Debug)]
pub(crate) struct HealthController {
    config: HealthConfig,
    state: AtomicU8,
    window: Mutex<HealthWindow>,
}

impl HealthController {
    pub(crate) fn new(config: HealthConfig) -> Self {
        Self {
            config,
            state: AtomicU8::new(HealthState::Healthy as u8),
            window: Mutex::new(HealthWindow {
                last_buckets: vec![0; LATENCY_BUCKETS],
                latency_hot: false,
                latency_severe: false,
                calm_streak: 0,
            }),
        }
    }

    /// The last published state (lock-free; telemetry reads this).
    pub(crate) fn current(&self) -> HealthState {
        HealthState::from_u8(self.state.load(Ordering::Acquire))
    }

    /// Feeds one observation (current queue depth, the admission capacity
    /// and the live cumulative latency histogram) and returns the state the
    /// triggering submission must be handled under.
    pub(crate) fn observe(&self, depth: u64, capacity: u64, buckets: &[u64]) -> HealthState {
        let mut w = self.window.lock().expect("health window poisoned");
        if let Some(slo) = self.config.p99_slo_us {
            let delta: Vec<u64> = buckets
                .iter()
                .zip(&w.last_buckets)
                .map(|(now, then)| now.saturating_sub(*then))
                .collect();
            let completions: u64 = delta.iter().sum();
            if completions >= MIN_WINDOW {
                let p99 = percentile_from_buckets(&delta, 0.99);
                w.latency_hot = p99 > slo;
                w.latency_severe = p99 > slo.saturating_mul(SEVERE_SLO_FACTOR);
                w.last_buckets.copy_from_slice(buckets);
            } else if depth == 0 && completions == 0 {
                // Idle pipeline: nothing queued and nothing completing —
                // the sticky latency signal has nothing left to measure.
                w.latency_hot = false;
                w.latency_severe = false;
                w.last_buckets.copy_from_slice(buckets);
            }
        }
        let shed_at = (self.config.shed_depth * capacity as f64).ceil() as u64;
        let degrade_at = (self.config.degrade_depth * capacity as f64).ceil() as u64;
        let target = if depth >= degrade_at.max(1) || w.latency_severe {
            HealthState::Degraded
        } else if depth >= shed_at.max(1) || w.latency_hot {
            HealthState::Shedding
        } else {
            HealthState::Healthy
        };
        let current = self.current();
        let next = if target >= current {
            // Escalation (or holding level) is immediate and resets the
            // recovery streak.
            w.calm_streak = 0;
            target
        } else {
            w.calm_streak += 1;
            if w.calm_streak >= self.config.recovery_observations.max(1) {
                w.calm_streak = 0;
                current.step_down()
            } else {
                current
            }
        };
        self.state.store(next as u8, Ordering::Release);
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::latency_bucket;

    fn buckets(completions_at_us: &[(u64, u64)]) -> Vec<u64> {
        let mut b = vec![0u64; LATENCY_BUCKETS];
        for &(us, count) in completions_at_us {
            b[latency_bucket(us)] += count;
        }
        b
    }

    #[test]
    fn depth_drives_the_ladder_up_immediately() {
        let hc = HealthController::new(
            HealthConfig::default()
                .with_shed_depth(0.5)
                .with_degrade_depth(0.9)
                .with_recovery_observations(2),
        );
        let idle = buckets(&[]);
        assert_eq!(hc.observe(0, 10, &idle), HealthState::Healthy);
        assert_eq!(hc.observe(5, 10, &idle), HealthState::Shedding);
        assert_eq!(hc.observe(9, 10, &idle), HealthState::Degraded);
        assert_eq!(hc.current(), HealthState::Degraded);
    }

    #[test]
    fn recovery_steps_down_one_state_with_hysteresis() {
        let hc = HealthController::new(
            HealthConfig::default()
                .with_shed_depth(0.5)
                .with_degrade_depth(0.9)
                .with_recovery_observations(2),
        );
        let idle = buckets(&[]);
        hc.observe(9, 10, &idle);
        assert_eq!(hc.current(), HealthState::Degraded);
        // One calm observation is not enough; two step down exactly once.
        assert_eq!(hc.observe(0, 10, &idle), HealthState::Degraded);
        assert_eq!(hc.observe(0, 10, &idle), HealthState::Shedding);
        // A fresh escalation resets the streak.
        assert_eq!(hc.observe(5, 10, &idle), HealthState::Shedding);
        assert_eq!(hc.observe(0, 10, &idle), HealthState::Shedding);
        assert_eq!(hc.observe(0, 10, &idle), HealthState::Healthy);
    }

    #[test]
    fn latency_slo_breach_sheds_and_severe_breach_degrades() {
        // SLO 512 µs: a p99 bucket bound of 1024 is hot but below the 8x
        // severe factor (4096), so the target is Shedding.
        let hot = HealthController::new(
            HealthConfig::default()
                .with_p99_slo_us(Some(512))
                .with_shed_depth(2.0)
                .with_degrade_depth(2.0),
        );
        assert_eq!(
            hot.observe(1, 10, &buckets(&[(1000, 4)])),
            HealthState::Shedding
        );
        // SLO 100 µs: the same window is > 8x over — straight to Degraded.
        let severe = HealthController::new(
            HealthConfig::default()
                .with_p99_slo_us(Some(100))
                .with_shed_depth(2.0)
                .with_degrade_depth(2.0),
        );
        assert_eq!(
            severe.observe(1, 10, &buckets(&[(1000, 4)])),
            HealthState::Degraded
        );
    }

    #[test]
    fn latency_windows_below_min_completions_are_not_evaluated() {
        let hc = HealthController::new(
            HealthConfig::default()
                .with_p99_slo_us(Some(10))
                .with_shed_depth(2.0)
                .with_degrade_depth(2.0),
        );
        // Only 3 completions since the last window: signal untouched.
        assert_eq!(
            hc.observe(1, 10, &buckets(&[(50_000, 3)])),
            HealthState::Healthy
        );
        // The 4th completion closes the window and trips the signal.
        assert_eq!(
            hc.observe(1, 10, &buckets(&[(50_000, 4)])),
            HealthState::Degraded
        );
    }

    #[test]
    fn idle_pipeline_clears_the_sticky_latency_signal() {
        let hc = HealthController::new(
            HealthConfig::default()
                .with_p99_slo_us(Some(512))
                .with_shed_depth(2.0)
                .with_degrade_depth(2.0)
                .with_recovery_observations(1),
        );
        let slow = buckets(&[(1000, 4)]);
        assert_eq!(hc.observe(1, 10, &slow), HealthState::Shedding);
        // Sticky while work is still in flight, even without a new window.
        assert_eq!(hc.observe(1, 10, &slow), HealthState::Shedding);
        // Idle (depth 0, no new completions) clears it; with a 1-observation
        // recovery streak the controller steps straight down.
        assert_eq!(hc.observe(0, 10, &slow), HealthState::Healthy);
    }

    #[test]
    fn labels_and_ordering_are_stable() {
        assert!(HealthState::Healthy < HealthState::Shedding);
        assert!(HealthState::Shedding < HealthState::Degraded);
        assert_eq!(HealthState::Healthy.as_str(), "healthy");
        assert_eq!(HealthState::Shedding.as_str(), "shedding");
        assert_eq!(HealthState::Degraded.as_str(), "degraded");
        assert_eq!(HealthState::Healthy.step_down(), HealthState::Healthy);
    }
}
