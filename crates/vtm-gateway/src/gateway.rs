//! The concurrent pricing gateway: ingress → micro-batching scheduler →
//! executor pool → completion handles, wrapped in a supervision layer.
//!
//! ```text
//!  submit(&self, QuoteRequest)            (any number of caller threads)
//!        │  feature-width check (typed reject, nothing enqueued)
//!        │  health controller: Shedding → typed retry-after reject,
//!        │                     Degraded → cached quote (no pipeline)
//!        │  admission control: in_flight < queue_capacity or Overloaded
//!        │  journal append (bounded retry; FailStop or bypass policy)
//!        ▼
//!  IngressQueue (Mutex<VecDeque> + Condvar, bounded by admission)
//!        │
//!  scheduler thread: expire stale deadlines, then drain up to max_batch,
//!        │            or whatever arrived when max_delay expires
//!        ▼
//!  BatchQueue (Mutex<VecDeque<Batch>> + Condvar)
//!        │
//!  executor pool (N threads): PricingService::quote_refs per batch,
//!        │                    under catch_unwind — a panicked batch fails
//!        │                    only its own tickets
//!        ▼
//!  QuoteTicket::wait() resolves; telemetry records latency + batch size
//!
//!  supervisor thread: respawns panicked executors, watches the scheduler
//!  and fails pending tickets (instead of hanging) if it dies
//! ```
//!
//! All synchronisation is `std` (`Mutex`/`Condvar`/atomics) — no async
//! runtime, consistent with the dependency-free workspace. The liveness
//! invariant is structural: every admitted request is owned by exactly one
//! [`Pending`], and a `Pending` resolves its ticket on drop if nothing else
//! did, so no [`QuoteTicket::wait`] can block forever — under panics,
//! injected faults, watchdog activations or shutdown.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use vtm_journal::{snapshot_path, JournalOptions, JournalWriter, StateSnapshot};
use vtm_obs::{StageHistograms, StageSnapshot, TraceRecord, Tracer, TracerConfig};
use vtm_serve::{PricingService, Quote, QuoteRequest};

use crate::fault::{FaultPlan, FaultState};
use crate::health::{HealthConfig, HealthController, HealthState};
use crate::telemetry::{percentile_from_buckets, Telemetry, TelemetrySnapshot};

/// What the gateway does when a journal append still fails after its
/// bounded retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JournalBypassPolicy {
    /// Reject the request with [`GatewayError::Journal`] and release its
    /// admission slot: the journal never under-records what the service
    /// processed, at the cost of availability on a bad disk.
    #[default]
    FailStop,
    /// Admit the request *without* a journal frame (counted in
    /// `journal_bypassed` telemetry): quotes keep flowing on a bad disk,
    /// at the cost of an audit gap — replay of the journal no longer
    /// reproduces the live state, and periodic snapshots are disabled for
    /// the rest of the run.
    DegradeWithoutJournal,
}

/// Static configuration of a [`Gateway`].
#[derive(Debug, Clone, PartialEq)]
pub struct GatewayConfig {
    /// Flush a forming batch as soon as it holds this many requests.
    pub max_batch: usize,
    /// Flush a forming batch this long after its first request arrived,
    /// even if it is smaller than `max_batch` (the latency deadline).
    pub max_delay: Duration,
    /// Admission bound: maximum admitted-but-not-yet-completed requests.
    /// Submissions beyond it are rejected with
    /// [`GatewayError::Overloaded`] instead of growing queues without
    /// bound.
    pub queue_capacity: usize,
    /// Inference executor threads draining flushed batches.
    pub executors: usize,
    /// Audit journaling: when set, every admitted request is appended to a
    /// fresh on-disk journal *before* it enters the batching pipeline, so
    /// the journal's frame order is exactly the admission order. With a
    /// single executor the journal (plus its periodic state snapshots)
    /// deterministically replays to the service's byte-identical state —
    /// see the `vtm-journal` crate.
    pub journal: Option<JournalOptions>,
    /// Per-request completion deadline stamped at admission (`None` = no
    /// deadline). The scheduler expires queued requests whose deadline has
    /// passed before forming batches ([`GatewayError::DeadlineExceeded`]),
    /// and [`QuoteTicket::wait`] stops blocking at the deadline.
    pub default_deadline: Option<Duration>,
    /// Bounded retries for a failed journal append before the
    /// [`JournalBypassPolicy`] decides the request's fate.
    pub journal_retries: u32,
    /// Backoff slept before journal append retry `n` (`n * journal_backoff`,
    /// linear). Held under the journal lock so admission order is kept.
    pub journal_backoff: Duration,
    /// What happens when journal retries are exhausted.
    pub journal_policy: JournalBypassPolicy,
    /// Graceful-degradation ladder (`None` = always Healthy, the exact
    /// pre-supervision behaviour).
    pub health: Option<HealthConfig>,
    /// Deterministic fault injection for the chaos harness (`None` in
    /// production; see [`FaultPlan`]).
    pub faults: Option<FaultPlan>,
    /// How often the supervisor thread checks worker liveness (executor
    /// respawn latency and scheduler-watchdog reaction time).
    pub supervisor_poll: Duration,
    /// Which fabric shard this gateway is (0 for a standalone gateway).
    /// Purely observational: stamped into [`TelemetrySnapshot::shard`] so a
    /// multi-shard fabric's per-gateway telemetry stays attributable after
    /// aggregation.
    pub shard: usize,
    /// Per-request stage tracing (`None` = off, zero overhead). When set,
    /// 1-in-N sampled requests carry a [`TraceRecord`] through the pipeline
    /// stamping admit → journal-append → enqueue → batch-formed →
    /// execute-start → priced → resolved, published into a lock-free ring
    /// ([`Gateway::trace_records`]) and folded into per-stage histograms
    /// ([`TelemetrySnapshot::stages`]). See `docs/OBSERVABILITY.md`.
    pub tracing: Option<TracerConfig>,
}

impl Default for GatewayConfig {
    /// 32-request batches, a 1 ms flush deadline, 1024 in-flight requests,
    /// one executor, no journaling, no deadlines, 2 journal retries with
    /// fail-stop, no health controller, no faults, 2 ms supervisor poll.
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_delay: Duration::from_millis(1),
            queue_capacity: 1024,
            executors: 1,
            journal: None,
            default_deadline: None,
            journal_retries: 2,
            journal_backoff: Duration::from_micros(500),
            journal_policy: JournalBypassPolicy::FailStop,
            health: None,
            faults: None,
            supervisor_poll: Duration::from_millis(2),
            shard: 0,
            tracing: None,
        }
    }
}

impl GatewayConfig {
    /// Overrides the batch-size flush threshold (clamped ≥ 1).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Overrides the flush deadline.
    pub fn with_max_delay(mut self, max_delay: Duration) -> Self {
        self.max_delay = max_delay;
        self
    }

    /// Overrides the admission bound (clamped ≥ 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Overrides the executor thread count (clamped ≥ 1).
    pub fn with_executors(mut self, executors: usize) -> Self {
        self.executors = executors.max(1);
        self
    }

    /// Enables admission journaling (see [`GatewayConfig::journal`]).
    pub fn with_journal(mut self, options: JournalOptions) -> Self {
        self.journal = Some(options);
        self
    }

    /// Stamps every admitted request with a completion deadline.
    pub fn with_default_deadline(mut self, deadline: Duration) -> Self {
        self.default_deadline = Some(deadline);
        self
    }

    /// Overrides the bounded journal-append retry count.
    pub fn with_journal_retries(mut self, retries: u32) -> Self {
        self.journal_retries = retries;
        self
    }

    /// Overrides the linear journal-retry backoff unit.
    pub fn with_journal_backoff(mut self, backoff: Duration) -> Self {
        self.journal_backoff = backoff;
        self
    }

    /// Overrides the journal-bypass policy.
    pub fn with_journal_policy(mut self, policy: JournalBypassPolicy) -> Self {
        self.journal_policy = policy;
        self
    }

    /// Enables the Healthy → Shedding → Degraded health controller.
    pub fn with_health(mut self, health: HealthConfig) -> Self {
        self.health = Some(health);
        self
    }

    /// Arms a deterministic fault-injection plan (chaos harness).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Overrides the supervisor liveness-poll interval (clamped ≥ 100 µs).
    pub fn with_supervisor_poll(mut self, poll: Duration) -> Self {
        self.supervisor_poll = poll.max(Duration::from_micros(100));
        self
    }

    /// Tags this gateway with its fabric shard id (telemetry attribution).
    pub fn with_shard(mut self, shard: usize) -> Self {
        self.shard = shard;
        self
    }

    /// Enables per-request stage tracing (see [`GatewayConfig::tracing`]).
    pub fn with_tracing(mut self, tracing: TracerConfig) -> Self {
        self.tracing = Some(tracing);
        self
    }
}

/// Typed failure modes of the gateway request path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GatewayError {
    /// Admission control rejected the request: the gateway already holds
    /// `queue_capacity` in-flight requests. The caller should back off and
    /// retry — this is backpressure, not a failure of the service.
    Overloaded {
        /// The admission bound that was hit.
        queue_capacity: usize,
    },
    /// The health controller is shedding load: the request was rejected at
    /// the door (no admission slot was consumed) with a retry hint derived
    /// from the live latency histogram and queue depth.
    Shed {
        /// Suggested client backoff before retrying, in microseconds.
        retry_after_us: u64,
    },
    /// The request's deadline passed before it could be priced (expired by
    /// the scheduler, or reported by a deadline-aware
    /// [`QuoteTicket::wait`]).
    DeadlineExceeded,
    /// The executor pricing this request's batch panicked; only that
    /// batch's requests fail with this error, and the supervisor respawns
    /// the executor.
    ExecutorFailed,
    /// The scheduler thread died; the watchdog failed this pending request
    /// instead of letting its ticket hang.
    SchedulerStalled,
    /// The request's feature block has the wrong width for the policy
    /// (checked at submission, before anything is enqueued).
    BadFeatureBlock {
        /// The offending session id.
        session: u64,
        /// Features per round the service expects.
        expected: usize,
        /// Features actually supplied.
        got: usize,
    },
    /// The executor-side service call failed for the whole batch
    /// (an internal geometry bug surfaced as a typed error, never a panic).
    Service(String),
    /// The admission journal could not be created or appended to (after
    /// bounded retries, under [`JournalBypassPolicy::FailStop`]). A request
    /// rejected with this error was **not** admitted (its in-flight slot is
    /// released) — the journal never under-records admissions.
    Journal(String),
    /// The request was still queued when shutdown drained the pipeline.
    ShuttingDown,
    /// The gateway was shut down before the request could be accepted.
    ShutDown,
}

impl fmt::Display for GatewayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GatewayError::Overloaded { queue_capacity } => write!(
                f,
                "gateway overloaded: {queue_capacity} requests already in flight"
            ),
            GatewayError::Shed { retry_after_us } => {
                write!(f, "gateway shedding load: retry after ~{retry_after_us} µs")
            }
            GatewayError::DeadlineExceeded => write!(f, "request deadline exceeded"),
            GatewayError::ExecutorFailed => {
                write!(f, "executor panicked while pricing the request's batch")
            }
            GatewayError::SchedulerStalled => {
                write!(f, "gateway scheduler stalled; request failed by watchdog")
            }
            GatewayError::BadFeatureBlock {
                session,
                expected,
                got,
            } => write!(
                f,
                "session {session}: feature block has {got} features, expected {expected}"
            ),
            GatewayError::Service(msg) => write!(f, "service error: {msg}"),
            GatewayError::Journal(msg) => write!(f, "journal error: {msg}"),
            GatewayError::ShuttingDown => write!(f, "gateway is shutting down"),
            GatewayError::ShutDown => write!(f, "gateway is shut down"),
        }
    }
}

impl std::error::Error for GatewayError {}

/// Shared slot a [`QuoteTicket`] waits on and the pipeline fills.
#[derive(Debug)]
struct TicketState {
    slot: Mutex<TicketSlot>,
    ready: Condvar,
}

/// The slot payload: `resolved` stays true after a waiter takes the result,
/// so the pipeline can tell "already completed" from "result consumed" and
/// never double-counts a completion.
#[derive(Debug, Default)]
struct TicketSlot {
    result: Option<Result<Quote, GatewayError>>,
    resolved: bool,
}

impl TicketState {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            slot: Mutex::new(TicketSlot::default()),
            ready: Condvar::new(),
        })
    }

    /// First resolution wins: returns `true` when this call resolved the
    /// ticket, `false` when it was already resolved (the result is kept).
    fn complete(&self, result: Result<Quote, GatewayError>) -> bool {
        let mut slot = self.slot.lock().expect("ticket poisoned");
        if slot.resolved {
            return false;
        }
        slot.result = Some(result);
        slot.resolved = true;
        drop(slot);
        self.ready.notify_all();
        true
    }
}

/// Per-request completion handle returned by [`Gateway::submit`]: a
/// one-shot future the caller blocks on (or polls) for its quote.
#[derive(Debug)]
pub struct QuoteTicket {
    state: Arc<TicketState>,
    deadline: Option<Instant>,
}

impl QuoteTicket {
    /// Blocks until the quote (or a typed error) is available. With a
    /// configured deadline the wait is bounded: once the deadline passes
    /// without a result, [`GatewayError::DeadlineExceeded`] is returned
    /// (the pipeline still resolves and releases the request's slot on its
    /// own — nothing leaks). A result that is already available is
    /// returned even past the deadline.
    pub fn wait(self) -> Result<Quote, GatewayError> {
        let mut slot = self.state.slot.lock().expect("ticket poisoned");
        loop {
            if let Some(result) = slot.result.take() {
                return result;
            }
            match self.deadline {
                None => slot = self.state.ready.wait(slot).expect("ticket poisoned"),
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(GatewayError::DeadlineExceeded);
                    }
                    let (guard, _) = self
                        .state
                        .ready
                        .wait_timeout(slot, deadline - now)
                        .expect("ticket poisoned");
                    slot = guard;
                }
            }
        }
    }

    /// Blocks up to `timeout`; `None` when the quote is not ready in time.
    /// The ticket stays valid and can be waited on again — and if the
    /// request is later shed, expired or failed, the pipeline resolves the
    /// slot with the typed error, so a re-wait always terminates.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Quote, GatewayError>> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.state.slot.lock().expect("ticket poisoned");
        loop {
            if let Some(result) = slot.result.take() {
                return Some(result);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .state
                .ready
                .wait_timeout(slot, deadline - now)
                .expect("ticket poisoned");
            slot = guard;
        }
    }

    /// Non-blocking poll; `None` while the quote is still pending.
    pub fn try_take(&self) -> Option<Result<Quote, GatewayError>> {
        self.state
            .slot
            .lock()
            .expect("ticket poisoned")
            .result
            .take()
    }
}

/// One admitted request travelling through the pipeline.
///
/// Owns the liveness invariant: if a `Pending` is dropped anywhere —
/// executor panic, queue teardown, a future bug — without its ticket having
/// been resolved, [`Drop`] resolves it with
/// [`GatewayError::ExecutorFailed`] and releases the admission slot. No
/// waiter can hang on a request the pipeline lost.
struct Pending {
    request: QuoteRequest,
    state: Arc<TicketState>,
    submitted: Instant,
    deadline: Option<Instant>,
    telemetry: Arc<Telemetry>,
    /// The request's in-flight trace record when it was sampled (`Copy`,
    /// stamped in place as the request moves through the pipeline, and
    /// published to the ring only on successful completion).
    trace: Option<TraceRecord>,
}

impl Pending {
    /// Fails the ticket (first resolution wins) and releases the slot.
    fn fail(&self, err: GatewayError) {
        if self.state.complete(Err(err)) {
            self.telemetry.record_failure();
        }
    }

    /// Rolls an admission back entirely: resolves the ticket with `err`
    /// and undoes the submit booking (the request never entered the
    /// pipeline, so this is an abort, not a failure).
    fn abort(&self, err: GatewayError) {
        self.state.complete(Err(err));
        self.telemetry.record_abort();
    }
}

impl Drop for Pending {
    fn drop(&mut self) {
        if self.state.complete(Err(GatewayError::ExecutorFailed)) {
            self.telemetry.record_failure();
        }
    }
}

/// The bounded ingress queue (bounded via the shared in-flight gauge, so
/// the bound covers queued *and* executing requests).
#[derive(Default)]
struct IngressQueue {
    inner: Mutex<IngressInner>,
    not_empty: Condvar,
}

#[derive(Default)]
struct IngressInner {
    queue: VecDeque<Pending>,
    closed: bool,
}

impl IngressQueue {
    /// Enqueues an admitted request; hands it back when the queue is
    /// closed so the caller can abort it properly.
    fn push(&self, pending: Pending) -> Option<Pending> {
        let mut inner = self.inner.lock().expect("ingress poisoned");
        if inner.closed {
            return Some(pending);
        }
        inner.queue.push_back(pending);
        drop(inner);
        self.not_empty.notify_one();
        None
    }

    fn close(&self) {
        self.inner.lock().expect("ingress poisoned").closed = true;
        self.not_empty.notify_all();
    }

    /// Removes and returns everything still queued (watchdog / shutdown
    /// sweep).
    fn drain_all(&self) -> Vec<Pending> {
        let mut inner = self.inner.lock().expect("ingress poisoned");
        inner.queue.drain(..).collect()
    }

    /// The scheduler's blocking micro-batch drain: waits for a first
    /// request, then keeps draining until the batch holds `max_batch`
    /// requests or `max_delay` has passed since the first one arrived —
    /// whichever comes first. Returns `None` only when the queue is closed
    /// *and* fully drained.
    fn pop_batch(&self, max_batch: usize, max_delay: Duration) -> Option<Vec<Pending>> {
        let mut inner = self.inner.lock().expect("ingress poisoned");
        // Phase 1: wait for the batch's first request.
        while inner.queue.is_empty() {
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("ingress poisoned");
        }
        let deadline = Instant::now() + max_delay;
        let mut batch = Vec::with_capacity(max_batch.min(inner.queue.len()));
        // Phase 2: drain until full or the deadline fires.
        loop {
            while batch.len() < max_batch {
                match inner.queue.pop_front() {
                    Some(pending) => batch.push(pending),
                    None => break,
                }
            }
            if batch.len() >= max_batch || inner.closed {
                return Some(batch);
            }
            let now = Instant::now();
            if now >= deadline {
                return Some(batch);
            }
            let (guard, timeout) = self
                .not_empty
                .wait_timeout(inner, deadline - now)
                .expect("ingress poisoned");
            inner = guard;
            if timeout.timed_out() && inner.queue.is_empty() {
                return Some(batch);
            }
        }
    }
}

/// One flushed micro-batch with its scheduler-assigned index (flush order;
/// the unit fault injection and executor supervision reason about).
struct Batch {
    index: u64,
    items: Vec<Pending>,
}

/// The scheduler → executor batch queue (unbounded; its length is already
/// bounded by admission control upstream).
#[derive(Default)]
struct BatchQueue {
    inner: Mutex<BatchInner>,
    not_empty: Condvar,
}

#[derive(Default)]
struct BatchInner {
    queue: VecDeque<Batch>,
    closed: bool,
}

impl BatchQueue {
    fn push(&self, batch: Batch) {
        let mut inner = self.inner.lock().expect("batch queue poisoned");
        inner.queue.push_back(batch);
        drop(inner);
        self.not_empty.notify_one();
    }

    fn close(&self) {
        self.inner.lock().expect("batch queue poisoned").closed = true;
        self.not_empty.notify_all();
    }

    /// Removes and returns every undrained batch (shutdown sweep after the
    /// executors are gone).
    fn drain_all(&self) -> Vec<Batch> {
        let mut inner = self.inner.lock().expect("batch queue poisoned");
        inner.queue.drain(..).collect()
    }

    fn pop(&self) -> Option<Batch> {
        let mut inner = self.inner.lock().expect("batch queue poisoned");
        loop {
            if let Some(batch) = inner.queue.pop_front() {
                return Some(batch);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("batch queue poisoned");
        }
    }
}

/// A wakeable shutdown latch the supervisor sleeps on, so shutdown never
/// has to wait out a full poll interval.
#[derive(Default)]
struct ShutdownGate {
    flag: Mutex<bool>,
    signal: Condvar,
}

impl ShutdownGate {
    /// Sleeps up to `timeout`; `true` when shutdown was signalled.
    fn wait(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut flag = self.flag.lock().expect("shutdown gate poisoned");
        while !*flag {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .signal
                .wait_timeout(flag, deadline - now)
                .expect("shutdown gate poisoned");
            flag = guard;
        }
        true
    }

    fn open(&self) {
        *self.flag.lock().expect("shutdown gate poisoned") = true;
        self.signal.notify_all();
    }
}

/// The worker thread handles, owned behind a lock so the supervisor can
/// reap and respawn executors while the gateway handle is elsewhere.
#[derive(Default)]
struct Workers {
    scheduler: Option<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
}

/// State shared by the gateway handle, the scheduler, the executors and
/// the supervisor. The admission counter lives inside [`Telemetry`] (it
/// doubles as the queue-depth gauge), so there is exactly one in-flight
/// count.
struct Shared {
    service: Arc<PricingService>,
    config: GatewayConfig,
    telemetry: Arc<Telemetry>,
    ingress: IngressQueue,
    batches: BatchQueue,
    /// The admission journal, when configured. The mutex is held across
    /// `append` *and* the ingress push, so on-disk frame order is exactly
    /// the order requests entered the pipeline.
    journal: Option<Mutex<JournalWriter>>,
    /// Requests fully processed by executors — the journal position the
    /// next periodic snapshot is tagged with (meaningful with one
    /// executor, where processing order equals admission order).
    frames_processed: AtomicU64,
    /// Armed fault-injection plan (chaos harness), if any.
    faults: Option<FaultState>,
    /// The degradation-ladder controller, if configured.
    health: Option<HealthController>,
    /// Set (before anything else) by shutdown; workers and the supervisor
    /// treat every finished thread as normal wind-down from here on.
    shutting_down: AtomicBool,
    /// Set by the watchdog when the scheduler died outside shutdown;
    /// submissions are rejected with [`GatewayError::SchedulerStalled`].
    scheduler_failed: AtomicBool,
    /// Set when live service state stopped matching the journal's frame
    /// sequence (a batch panicked after its frames were journaled, a
    /// deadline expired a journaled request, a journal append was
    /// bypassed). Disables periodic snapshots, which would otherwise
    /// claim frames the service never processed.
    pipeline_diverged: AtomicBool,
    /// The stage tracer, when [`GatewayConfig::tracing`] is set.
    tracer: Option<Tracer>,
    /// Per-stage histograms fed from sampled traces at completion time.
    stages: StageHistograms,
    /// Per-gateway admission counter: the `seq` half of each request's
    /// stable trace id (`trace_id(session, admission_seq)`).
    admit_seq: AtomicU64,
    /// Wakes the supervisor out of its poll sleep at shutdown.
    gate: ShutdownGate,
    workers: Mutex<Workers>,
}

impl Shared {
    /// Marks live state as no longer reproducible from the journal alone.
    fn mark_diverged(&self) {
        self.pipeline_diverged.store(true, Ordering::Release);
    }

    /// A tracer-clock timestamp, or 0 when tracing is off. Only called on
    /// paths that already hold a sampled trace record, so the logical
    /// clock is not advanced by untraced requests.
    fn trace_now(&self) -> u64 {
        self.tracer.as_ref().map_or(0, Tracer::now_us)
    }
}

/// The concurrent online pricing gateway. See the crate docs for the
/// design, determinism contract and fault model.
pub struct Gateway {
    shared: Arc<Shared>,
    supervisor: Option<JoinHandle<()>>,
}

impl fmt::Debug for Gateway {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Gateway")
            .field("config", &self.shared.config)
            .finish()
    }
}

impl Gateway {
    /// Starts a gateway over a shared frozen [`PricingService`]: spawns the
    /// scheduler thread, `config.executors` executor threads and the
    /// supervisor.
    ///
    /// # Panics
    ///
    /// Panics when a configured admission journal cannot be created; use
    /// [`Gateway::try_start`] to handle that as a typed error.
    pub fn start(service: Arc<PricingService>, config: GatewayConfig) -> Self {
        Self::try_start(service, config).expect("gateway start failed")
    }

    /// Starts a gateway, surfacing journal-creation failures as
    /// [`GatewayError::Journal`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`GatewayError::Journal`] when `config.journal` is set and
    /// the journal file cannot be created.
    pub fn try_start(
        service: Arc<PricingService>,
        config: GatewayConfig,
    ) -> Result<Self, GatewayError> {
        let journal = match &config.journal {
            Some(options) => Some(Mutex::new(
                options
                    .open()
                    .map_err(|e| GatewayError::Journal(e.to_string()))?,
            )),
            None => None,
        };
        let executor_count = config.executors.max(1);
        let faults = config.faults.clone().map(FaultState::new);
        let health = config.health.clone().map(HealthController::new);
        let tracer = config.tracing.map(Tracer::new);
        let shared = Arc::new(Shared {
            service,
            config,
            telemetry: Arc::new(Telemetry::new()),
            ingress: IngressQueue::default(),
            batches: BatchQueue::default(),
            journal,
            frames_processed: AtomicU64::new(0),
            faults,
            health,
            shutting_down: AtomicBool::new(false),
            scheduler_failed: AtomicBool::new(false),
            pipeline_diverged: AtomicBool::new(false),
            tracer,
            stages: StageHistograms::new(),
            admit_seq: AtomicU64::new(0),
            gate: ShutdownGate::default(),
            workers: Mutex::new(Workers::default()),
        });

        let scheduler = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("vtm-gateway-scheduler".to_string())
                .spawn(move || scheduler_loop(&shared))
                .expect("spawn scheduler")
        };
        let executors = (0..executor_count)
            .map(|i| spawn_executor(&shared, format!("vtm-gateway-executor-{i}")))
            .collect();
        {
            let mut workers = shared.workers.lock().expect("workers poisoned");
            workers.scheduler = Some(scheduler);
            workers.executors = executors;
        }
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("vtm-gateway-supervisor".to_string())
                .spawn(move || supervisor_loop(&shared))
                .expect("spawn supervisor")
        };

        Ok(Self {
            shared,
            supervisor: Some(supervisor),
        })
    }

    /// The gateway configuration.
    pub fn config(&self) -> &GatewayConfig {
        &self.shared.config
    }

    /// The underlying pricing service.
    pub fn service(&self) -> &PricingService {
        &self.shared.service
    }

    /// Submits one quote request; returns immediately with a completion
    /// handle. Malformed requests and overload are rejected here, before
    /// anything is enqueued; the health controller may shed the request or
    /// answer it from the degraded cache.
    ///
    /// # Errors
    ///
    /// [`GatewayError::BadFeatureBlock`] for a wrong feature width,
    /// [`GatewayError::Shed`] while the health controller is shedding (or
    /// degraded with no cached quote for the session),
    /// [`GatewayError::Overloaded`] when `queue_capacity` requests are
    /// already in flight (backpressure — retry later),
    /// [`GatewayError::Journal`] when journaling fails under the fail-stop
    /// policy, [`GatewayError::SchedulerStalled`] after the watchdog
    /// declared the scheduler dead, and [`GatewayError::ShutDown`] after
    /// shutdown.
    pub fn submit(&self, request: QuoteRequest) -> Result<QuoteTicket, GatewayError> {
        let expected = self.shared.service.config().features_per_round;
        if request.features.len() != expected {
            return Err(GatewayError::BadFeatureBlock {
                session: request.session,
                expected,
                got: request.features.len(),
            });
        }
        if self.shared.scheduler_failed.load(Ordering::Acquire) {
            return Err(GatewayError::SchedulerStalled);
        }
        // The degradation ladder is evaluated on the submit path: the
        // scheduler may legitimately be parked inside its batch drain, so
        // submissions drive the controller.
        if let Some(health) = &self.shared.health {
            let depth = self.shared.telemetry.in_flight();
            let capacity = self.shared.config.queue_capacity as u64;
            let buckets = self.shared.telemetry.latency_buckets_now();
            match health.observe(depth, capacity, &buckets) {
                HealthState::Healthy => {}
                HealthState::Shedding => {
                    self.shared.telemetry.record_shed();
                    return Err(GatewayError::Shed {
                        retry_after_us: self.retry_after_us(depth, &buckets),
                    });
                }
                HealthState::Degraded => {
                    // Answer from the session-local last-quote cache
                    // without touching the pipeline or the session state;
                    // sessions the cache cannot help are shed.
                    if let Some(quote) = self.shared.service.cached_quote(request.session) {
                        self.shared.telemetry.record_degraded_quote();
                        let state = TicketState::new();
                        state.complete(Ok(quote));
                        return Ok(QuoteTicket {
                            state,
                            deadline: None,
                        });
                    }
                    self.shared.telemetry.record_shed();
                    return Err(GatewayError::Shed {
                        retry_after_us: self.retry_after_us(depth, &buckets),
                    });
                }
            }
        }
        // Admission control: atomically claim an in-flight slot or reject.
        let capacity = self.shared.config.queue_capacity as u64;
        if !self.shared.telemetry.try_admit(capacity) {
            self.shared.telemetry.record_reject();
            return Err(GatewayError::Overloaded {
                queue_capacity: self.shared.config.queue_capacity,
            });
        }
        // Book the submission BEFORE enqueueing: once the request is in the
        // queue an executor may complete it at any moment, and a snapshot
        // must never observe completed > submitted.
        self.shared.telemetry.record_submit();
        // Sampling decision: every admission takes one seq (so trace ids
        // are stable admission identities), but only sampled requests carry
        // a record — untraced requests never touch the tracer clock.
        let trace = self.shared.tracer.as_ref().and_then(|tracer| {
            let seq = self.shared.admit_seq.fetch_add(1, Ordering::Relaxed);
            let mut record = TraceRecord::new(request.session, seq);
            tracer.sampled(record.trace_id).then(|| {
                record.admit_us = tracer.now_us();
                record
            })
        });
        let state = TicketState::new();
        let submitted = Instant::now();
        let deadline = self.shared.config.default_deadline.map(|d| submitted + d);
        let mut pending = Pending {
            request,
            state: Arc::clone(&state),
            submitted,
            deadline,
            telemetry: Arc::clone(&self.shared.telemetry),
            trace,
        };
        // Journal the admission and enqueue under ONE lock, so the on-disk
        // frame order is exactly the order requests enter the pipeline
        // (replay order == admission order). A failed append is retried
        // with bounded backoff; exhaustion is decided by the bypass policy.
        let rejected = match &self.shared.journal {
            Some(journal) => {
                // The journal stage is stamped around the whole append
                // critical section (lock wait + bounded retries included) —
                // the writer-internal `AppendLatency` isolates the pure
                // append cost for comparison.
                if let Some(trace) = pending.trace.as_mut() {
                    trace.journal_start_us = self.shared.trace_now();
                }
                let mut writer = journal.lock().expect("journal poisoned");
                let mut outcome = self.journal_append(&mut writer, &pending.request);
                let mut attempt = 0u32;
                while outcome.is_err() && attempt < self.shared.config.journal_retries {
                    attempt += 1;
                    self.shared.telemetry.record_journal_retry();
                    std::thread::sleep(self.shared.config.journal_backoff * attempt);
                    outcome = self.journal_append(&mut writer, &pending.request);
                }
                match outcome {
                    Ok(bytes) => {
                        self.shared.telemetry.record_journal_append(bytes);
                        if let Some(trace) = pending.trace.as_mut() {
                            trace.journal_end_us = self.shared.trace_now();
                            trace.enqueue_us = self.shared.trace_now();
                        }
                        self.shared.ingress.push(pending)
                    }
                    Err(message) => match self.shared.config.journal_policy {
                        JournalBypassPolicy::FailStop => {
                            drop(writer);
                            // Un-admit: the journal never under-records
                            // what the service processed.
                            pending.abort(GatewayError::Journal(message.clone()));
                            return Err(GatewayError::Journal(message));
                        }
                        JournalBypassPolicy::DegradeWithoutJournal => {
                            self.shared.telemetry.record_journal_bypass();
                            self.shared.mark_diverged();
                            if let Some(trace) = pending.trace.as_mut() {
                                // No frame was written: a zero journal_start
                                // is the "not journaled" marker.
                                trace.journal_start_us = 0;
                                trace.journal_end_us = 0;
                                trace.enqueue_us = self.shared.trace_now();
                            }
                            self.shared.ingress.push(pending)
                        }
                    },
                }
            }
            None => {
                if let Some(trace) = pending.trace.as_mut() {
                    trace.enqueue_us = self.shared.trace_now();
                }
                self.shared.ingress.push(pending)
            }
        };
        if let Some(pending) = rejected {
            let err = if self.shared.scheduler_failed.load(Ordering::Acquire) {
                GatewayError::SchedulerStalled
            } else {
                GatewayError::ShutDown
            };
            pending.abort(err.clone());
            return Err(err);
        }
        Ok(QuoteTicket { state, deadline })
    }

    /// One journal append attempt, with the fault-injection hook in front
    /// (an injected error consumes the attempt without writing a frame).
    fn journal_append(
        &self,
        writer: &mut JournalWriter,
        request: &QuoteRequest,
    ) -> Result<u64, String> {
        if let Some(faults) = &self.shared.faults {
            if let Some(kind) = faults.next_journal_append() {
                return Err(std::io::Error::from(kind).to_string());
            }
        }
        let before = writer.bytes_written();
        writer.append(request).map_err(|e| e.to_string())?;
        Ok(writer.bytes_written() - before)
    }

    /// The `retry_after` hint a shed request carries: the live median batch
    /// latency times the number of batches queued ahead — a cheap, honest
    /// "when will the backlog plausibly have drained" estimate.
    fn retry_after_us(&self, depth: u64, latency_buckets: &[u64]) -> u64 {
        let p50 = percentile_from_buckets(latency_buckets, 0.50).max(1);
        let batches_ahead = depth.div_ceil(self.shared.config.max_batch as u64).max(1);
        p50.saturating_mul(batches_ahead)
    }

    /// Convenience: submit and block for the quote.
    ///
    /// # Errors
    ///
    /// Same as [`Gateway::submit`], plus any executor-side failure.
    pub fn quote(&self, request: QuoteRequest) -> Result<Quote, GatewayError> {
        self.submit(request)?.wait()
    }

    /// A point-in-time telemetry snapshot (counters, queue depth, health
    /// state, latency/batch-size histograms with p50/p95/p99, plus the
    /// per-stage decomposition and journal append cost when available).
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.enrich_snapshot(self.shared.telemetry.snapshot())
    }

    /// Stamps the service/health/tracing context onto a raw counter
    /// snapshot (shared by [`Gateway::telemetry`] and [`Gateway::shutdown`]).
    fn enrich_snapshot(&self, mut snapshot: TelemetrySnapshot) -> TelemetrySnapshot {
        snapshot.precision = self.shared.service.config().precision.name();
        snapshot.shard = self.shared.config.shard;
        if let Some(health) = &self.shared.health {
            snapshot.health = health.current();
        }
        if self.shared.tracer.is_some() {
            snapshot.stages = Some(self.shared.stages.snapshot());
        }
        if let Some(journal) = &self.shared.journal {
            if let Ok(writer) = journal.lock() {
                let append = writer.append_latency();
                snapshot.journal_append_mean_us = append.mean_us();
                snapshot.journal_append_max_us = append.max_us;
            }
        }
        snapshot
    }

    /// The sampled trace records currently in the tracer's ring, sorted by
    /// admit time (empty when tracing is disabled). Only successfully
    /// completed requests are published — shed, expired and failed
    /// requests never reach the ring.
    pub fn trace_records(&self) -> Vec<TraceRecord> {
        self.shared
            .tracer
            .as_ref()
            .map_or_else(Vec::new, Tracer::records)
    }

    /// The per-stage latency decomposition accumulated from sampled traces
    /// (`None` when tracing is disabled).
    pub fn stage_snapshot(&self) -> Option<StageSnapshot> {
        self.shared
            .tracer
            .as_ref()
            .map(|_| self.shared.stages.snapshot())
    }

    /// `(published, dropped)` trace-ring counters (both 0 when tracing is
    /// disabled): how many sampled records reached the ring and how many
    /// were lost to writer-side slot contention.
    pub fn trace_counters(&self) -> (u64, u64) {
        self.shared
            .tracer
            .as_ref()
            .map_or((0, 0), |t| (t.published(), t.dropped()))
    }

    /// Stops accepting new requests, drains or fails every in-flight
    /// request (queued work that can no longer be priced fails with
    /// [`GatewayError::ShuttingDown`] instead of leaking its ticket), joins
    /// all worker threads and returns the final telemetry snapshot. Called
    /// implicitly on drop.
    pub fn shutdown(mut self) -> TelemetrySnapshot {
        self.shutdown_inner();
        self.enrich_snapshot(self.shared.telemetry.snapshot())
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutting_down.store(true, Ordering::Release);
        self.shared.gate.open();
        self.shared.ingress.close();
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
        let (scheduler, executors) = {
            let mut workers = self.shared.workers.lock().expect("workers poisoned");
            (
                workers.scheduler.take(),
                std::mem::take(&mut workers.executors),
            )
        };
        if let Some(handle) = scheduler {
            let _ = handle.join();
        }
        // A scheduler that died before the watchdog noticed never closed
        // the batch queue; close it now (idempotent — queued batches are
        // still drained) so executors can wind down.
        self.shared.batches.close();
        for handle in executors {
            let _ = handle.join();
        }
        // Final sweep: every worker is gone, so anything still queued can
        // never be priced — fail it with a typed error instead of leaking
        // the tickets (and their admission slots).
        for pending in self.shared.ingress.drain_all() {
            pending.fail(GatewayError::ShuttingDown);
        }
        for batch in self.shared.batches.drain_all() {
            for pending in &batch.items {
                pending.fail(GatewayError::ShuttingDown);
            }
        }
        // Make the journal crash-durable before reporting shutdown complete:
        // every admitted request has been processed (or typed-failed), so
        // the synced journal replays to exactly what the journal recorded.
        if let Some(journal) = &self.shared.journal {
            if let Ok(mut writer) = journal.lock() {
                let _ = writer.sync();
            }
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Spawns one executor thread (initial pool and supervisor respawns).
fn spawn_executor(shared: &Arc<Shared>, name: String) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(name)
        .spawn(move || executor_loop(&shared))
        .expect("spawn executor")
}

/// Scheduler thread: expire stale requests, then drain micro-batches off
/// the ingress queue until it is closed and empty, then close the batch
/// queue so executors wind down.
fn scheduler_loop(shared: &Shared) {
    let max_batch = shared.config.max_batch;
    let max_delay = shared.config.max_delay;
    let mut next_index = 0u64;
    loop {
        if let Some(faults) = &shared.faults {
            if faults.next_scheduler_iteration() {
                panic!("injected scheduler panic");
            }
        }
        let Some(drained) = shared.ingress.pop_batch(max_batch, max_delay) else {
            break;
        };
        // Deadline expiry before batch formation: work that can no longer
        // meet its deadline is failed here instead of wasting an executor
        // slot (and, under load shedding, instead of growing the backlog).
        let now = Instant::now();
        let mut batch = Vec::with_capacity(drained.len());
        for pending in drained {
            if pending.deadline.is_some_and(|d| now >= d) {
                // The request may already be journaled: live state no
                // longer tracks the journal frame-for-frame.
                shared.mark_diverged();
                if pending.state.complete(Err(GatewayError::DeadlineExceeded)) {
                    pending.telemetry.record_expired();
                }
            } else {
                batch.push(pending);
            }
        }
        if batch.is_empty() {
            continue;
        }
        shared.telemetry.record_batch(batch.len());
        // One batch-formed stamp shared by every traced request in the
        // batch (they left the queue together); untraced batches never
        // touch the tracer clock.
        let mut formed_ts = 0u64;
        for pending in batch.iter_mut() {
            if let Some(trace) = pending.trace.as_mut() {
                if formed_ts == 0 {
                    formed_ts = shared.trace_now();
                }
                trace.batch_formed_us = formed_ts;
            }
        }
        shared.batches.push(Batch {
            index: next_index,
            items: batch,
        });
        next_index += 1;
    }
    shared.batches.close();
}

/// Executor thread: price whole batches against the shared frozen service
/// and resolve every ticket. Batches run under `catch_unwind`: a panic
/// fails only that batch's tickets, then the thread exits and the
/// supervisor respawns it.
fn executor_loop(shared: &Shared) {
    while let Some(batch) = shared.batches.pop() {
        if !run_batch(shared, batch) {
            // Deliberate die-and-respawn: a panicked executor's internal
            // state is suspect, so the supervisor replaces the thread.
            return;
        }
    }
}

/// Prices one batch; `false` when the executor must die (batch panicked).
fn run_batch(shared: &Shared, mut batch: Batch) -> bool {
    if let Some(faults) = &shared.faults {
        if let Some(delay) = faults.batch_delay(batch.index) {
            std::thread::sleep(delay);
        }
    }
    // One execute-start stamp for the whole batch, taken only when the
    // batch actually carries a traced request.
    let execute_ts = if batch.items.iter().any(|p| p.trace.is_some()) {
        shared.trace_now()
    } else {
        0
    };
    if execute_ts > 0 {
        for pending in batch.items.iter_mut() {
            if let Some(trace) = pending.trace.as_mut() {
                trace.execute_start_us = execute_ts;
            }
        }
    }
    let priced = catch_unwind(AssertUnwindSafe(|| {
        if let Some(faults) = &shared.faults {
            if faults.executor_panic(batch.index) {
                panic!("injected executor panic on batch {}", batch.index);
            }
        }
        let refs: Vec<&QuoteRequest> = batch.items.iter().map(|p| &p.request).collect();
        shared.service.quote_refs(&refs)
    }));
    match priced {
        Ok(Ok(quotes)) => {
            let processed = batch.items.len();
            // One priced stamp for the whole batch (the forward pass ended
            // for every request at once); resolved is stamped per ticket.
            let priced_ts = if execute_ts > 0 {
                shared.trace_now()
            } else {
                0
            };
            for (mut pending, quote) in batch.items.into_iter().zip(quotes) {
                let latency_us = pending.submitted.elapsed().as_micros() as u64;
                if let Some(trace) = pending.trace.as_mut() {
                    trace.priced_us = priced_ts;
                    trace.resolved_us = shared.trace_now();
                    trace.set_batch(processed, shared.config.shard);
                    shared.stages.record(trace);
                    if let Some(tracer) = &shared.tracer {
                        tracer.publish(trace);
                    }
                }
                // Record before completing the ticket: a caller that submits
                // again the instant `wait` returns must already see this
                // completion in the telemetry/health latency window. The
                // executor owns its popped batch, so nothing else can have
                // resolved these tickets — `complete` always wins here.
                pending.telemetry.record_completion(latency_us);
                pending.state.complete(Ok(quote));
            }
            maybe_snapshot(shared, processed as u64);
            true
        }
        Ok(Err(err)) => {
            // Feature widths were validated at submit time, so this is an
            // internal error; fail the whole batch with it. The requests
            // may be journaled without having been priced.
            shared.mark_diverged();
            let message = err.to_string();
            for pending in &batch.items {
                pending.fail(GatewayError::Service(message.clone()));
            }
            true
        }
        Err(_) => {
            // The injected (or real) panic fired before pricing touched the
            // shared service, or pricing itself blew up: either way only
            // this batch is affected. Its requests may already be
            // journaled, so live state diverges from the journal.
            shared.telemetry.record_panic();
            shared.mark_diverged();
            for pending in &batch.items {
                pending.fail(GatewayError::ExecutorFailed);
            }
            false
        }
    }
}

/// Supervisor thread: reaps and respawns panicked executors, and watches
/// the scheduler — if it dies outside shutdown, pending tickets are failed
/// (typed) instead of hanging forever.
fn supervisor_loop(shared: &Arc<Shared>) {
    let mut respawned = 0u64;
    loop {
        if shared.gate.wait(shared.config.supervisor_poll) {
            // Shutdown owns joining the workers from here.
            return;
        }
        // Scheduler watchdog.
        let scheduler_finished = {
            let workers = shared.workers.lock().expect("workers poisoned");
            workers
                .scheduler
                .as_ref()
                .is_some_and(|handle| handle.is_finished())
        };
        if scheduler_finished && !shared.shutting_down.load(Ordering::Acquire) {
            let handle = shared
                .workers
                .lock()
                .expect("workers poisoned")
                .scheduler
                .take();
            if let Some(handle) = handle {
                let _ = handle.join();
            }
            on_scheduler_death(shared);
        }
        if shared.scheduler_failed.load(Ordering::Acquire) {
            // No respawns after scheduler death: the queues are closed and
            // surviving executors are draining what remains.
            continue;
        }
        // Executor supervision: a finished executor outside shutdown died
        // from a batch panic — replace it.
        let mut workers = shared.workers.lock().expect("workers poisoned");
        for slot in workers.executors.iter_mut() {
            if slot.is_finished() && !shared.shutting_down.load(Ordering::Acquire) {
                let name = format!("vtm-gateway-executor-r{respawned}");
                respawned += 1;
                let dead = std::mem::replace(slot, spawn_executor(shared, name));
                let _ = dead.join();
                shared.telemetry.record_restart();
            }
        }
    }
}

/// The watchdog path: the scheduler died outside shutdown. Fail everything
/// it stranded, close the pipeline so executors wind down, and reject
/// future submissions with a typed error.
fn on_scheduler_death(shared: &Shared) {
    shared.scheduler_failed.store(true, Ordering::Release);
    shared.mark_diverged();
    shared.telemetry.record_watchdog_fire();
    shared.ingress.close();
    for pending in shared.ingress.drain_all() {
        pending.fail(GatewayError::SchedulerStalled);
    }
    // Executors still drain already-flushed batches, then exit.
    shared.batches.close();
}

/// Executor-side periodic snapshotting: after a batch completes, capture
/// the service state whenever the processed-request count crosses a
/// `snapshot_every` boundary, tagged with the exact journal position.
///
/// Only taken with a single executor — there, batches finish in admission
/// order, so "requests processed" IS the journal prefix the state is
/// consistent with. With more executors the mapping breaks (batches finish
/// out of order) and snapshots are skipped; crash recovery then replays
/// the whole journal from genesis. Snapshots are also disabled once live
/// state diverged from the journal (panicked batches, expired deadlines,
/// journal bypass) — a snapshot must never claim frames the service never
/// processed.
fn maybe_snapshot(shared: &Shared, processed: u64) {
    let Some(options) = &shared.config.journal else {
        return;
    };
    if options.snapshot_every == 0
        || shared.config.executors != 1
        || shared.pipeline_diverged.load(Ordering::Acquire)
    {
        return;
    }
    let total = shared
        .frames_processed
        .fetch_add(processed, Ordering::Relaxed)
        + processed;
    if total / options.snapshot_every == (total - processed) / options.snapshot_every {
        return;
    }
    // Between the quote_refs above and here no other executor runs, so the
    // service state is exactly "the first `total` admitted requests". Push
    // the journal to disk first: a snapshot must never claim more frames
    // than the journal can replay.
    if let Some(journal) = &shared.journal {
        if journal
            .lock()
            .map(|mut writer| writer.sync().is_ok())
            .unwrap_or(false)
        {
            let snapshot = StateSnapshot::capture(&shared.service, total);
            if snapshot
                .save_to(snapshot_path(&options.path, total))
                .is_ok()
            {
                shared.telemetry.record_snapshot();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builders_clamp() {
        let config = GatewayConfig::default()
            .with_max_batch(0)
            .with_queue_capacity(0)
            .with_executors(0)
            .with_max_delay(Duration::from_micros(250))
            .with_default_deadline(Duration::from_millis(5))
            .with_journal_retries(3)
            .with_journal_backoff(Duration::from_micros(50))
            .with_journal_policy(JournalBypassPolicy::DegradeWithoutJournal)
            .with_supervisor_poll(Duration::ZERO);
        assert_eq!(config.max_batch, 1);
        assert_eq!(config.queue_capacity, 1);
        assert_eq!(config.executors, 1);
        assert_eq!(config.max_delay, Duration::from_micros(250));
        assert_eq!(config.default_deadline, Some(Duration::from_millis(5)));
        assert_eq!(config.journal_retries, 3);
        assert_eq!(config.journal_backoff, Duration::from_micros(50));
        assert_eq!(
            config.journal_policy,
            JournalBypassPolicy::DegradeWithoutJournal
        );
        assert_eq!(config.supervisor_poll, Duration::from_micros(100));
        assert_eq!(
            GatewayConfig::default().journal_policy,
            JournalBypassPolicy::FailStop
        );
    }

    #[test]
    fn errors_display() {
        for err in [
            GatewayError::Overloaded { queue_capacity: 4 },
            GatewayError::Shed { retry_after_us: 9 },
            GatewayError::DeadlineExceeded,
            GatewayError::ExecutorFailed,
            GatewayError::SchedulerStalled,
            GatewayError::BadFeatureBlock {
                session: 1,
                expected: 2,
                got: 3,
            },
            GatewayError::Service("boom".to_string()),
            GatewayError::Journal("disk".to_string()),
            GatewayError::ShuttingDown,
            GatewayError::ShutDown,
        ] {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn ticket_resolution_is_first_wins() {
        let state = TicketState::new();
        assert!(state.complete(Err(GatewayError::DeadlineExceeded)));
        assert!(!state.complete(Err(GatewayError::ExecutorFailed)));
        let ticket = QuoteTicket {
            state,
            deadline: None,
        };
        assert!(matches!(
            ticket.try_take(),
            Some(Err(GatewayError::DeadlineExceeded))
        ));
        // Taken, but still resolved: later completions stay no-ops.
        assert!(!ticket.state.complete(Err(GatewayError::ExecutorFailed)));
        assert!(ticket.try_take().is_none());
    }
}
