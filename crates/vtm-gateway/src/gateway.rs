//! The concurrent pricing gateway: ingress → micro-batching scheduler →
//! executor pool → completion handles.
//!
//! ```text
//!  submit(&self, QuoteRequest)            (any number of caller threads)
//!        │  feature-width check (typed reject, nothing enqueued)
//!        │  admission control: in_flight < queue_capacity or Overloaded
//!        ▼
//!  IngressQueue (Mutex<VecDeque> + Condvar, bounded by admission)
//!        │
//!  scheduler thread: drain up to max_batch, or whatever arrived when
//!        │            max_delay expires — whichever comes first
//!        ▼
//!  BatchQueue (Mutex<VecDeque<Vec<Pending>>> + Condvar)
//!        │
//!  executor pool (N threads): PricingService::quote_refs per batch
//!        ▼
//!  QuoteTicket::wait() resolves; telemetry records latency + batch size
//! ```
//!
//! All synchronisation is `std` (`Mutex`/`Condvar`/atomics) — no async
//! runtime, consistent with the dependency-free workspace.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use vtm_journal::{snapshot_path, JournalOptions, JournalWriter, StateSnapshot};
use vtm_serve::{PricingService, Quote, QuoteRequest};

use crate::telemetry::{Telemetry, TelemetrySnapshot};

/// Static configuration of a [`Gateway`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatewayConfig {
    /// Flush a forming batch as soon as it holds this many requests.
    pub max_batch: usize,
    /// Flush a forming batch this long after its first request arrived,
    /// even if it is smaller than `max_batch` (the latency deadline).
    pub max_delay: Duration,
    /// Admission bound: maximum admitted-but-not-yet-completed requests.
    /// Submissions beyond it are rejected with
    /// [`GatewayError::Overloaded`] instead of growing queues without
    /// bound.
    pub queue_capacity: usize,
    /// Inference executor threads draining flushed batches.
    pub executors: usize,
    /// Audit journaling: when set, every admitted request is appended to a
    /// fresh on-disk journal *before* it enters the batching pipeline, so
    /// the journal's frame order is exactly the admission order. With a
    /// single executor the journal (plus its periodic state snapshots)
    /// deterministically replays to the service's byte-identical state —
    /// see the `vtm-journal` crate.
    pub journal: Option<JournalOptions>,
}

impl Default for GatewayConfig {
    /// 32-request batches, a 1 ms flush deadline, 1024 in-flight requests,
    /// one executor, no journaling.
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_delay: Duration::from_millis(1),
            queue_capacity: 1024,
            executors: 1,
            journal: None,
        }
    }
}

impl GatewayConfig {
    /// Overrides the batch-size flush threshold (clamped ≥ 1).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Overrides the flush deadline.
    pub fn with_max_delay(mut self, max_delay: Duration) -> Self {
        self.max_delay = max_delay;
        self
    }

    /// Overrides the admission bound (clamped ≥ 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Overrides the executor thread count (clamped ≥ 1).
    pub fn with_executors(mut self, executors: usize) -> Self {
        self.executors = executors.max(1);
        self
    }

    /// Enables admission journaling (see [`GatewayConfig::journal`]).
    pub fn with_journal(mut self, options: JournalOptions) -> Self {
        self.journal = Some(options);
        self
    }
}

/// Typed failure modes of the gateway request path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GatewayError {
    /// Admission control rejected the request: the gateway already holds
    /// `queue_capacity` in-flight requests. The caller should back off and
    /// retry — this is backpressure, not a failure of the service.
    Overloaded {
        /// The admission bound that was hit.
        queue_capacity: usize,
    },
    /// The request's feature block has the wrong width for the policy
    /// (checked at submission, before anything is enqueued).
    BadFeatureBlock {
        /// The offending session id.
        session: u64,
        /// Features per round the service expects.
        expected: usize,
        /// Features actually supplied.
        got: usize,
    },
    /// The executor-side service call failed for the whole batch
    /// (an internal geometry bug surfaced as a typed error, never a panic).
    Service(String),
    /// The admission journal could not be created or appended to. A request
    /// rejected with this error was **not** admitted (its in-flight slot is
    /// released) — the journal never under-records admissions.
    Journal(String),
    /// The gateway was shut down before the request could be accepted.
    ShutDown,
}

impl fmt::Display for GatewayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GatewayError::Overloaded { queue_capacity } => write!(
                f,
                "gateway overloaded: {queue_capacity} requests already in flight"
            ),
            GatewayError::BadFeatureBlock {
                session,
                expected,
                got,
            } => write!(
                f,
                "session {session}: feature block has {got} features, expected {expected}"
            ),
            GatewayError::Service(msg) => write!(f, "service error: {msg}"),
            GatewayError::Journal(msg) => write!(f, "journal error: {msg}"),
            GatewayError::ShutDown => write!(f, "gateway is shut down"),
        }
    }
}

impl std::error::Error for GatewayError {}

/// Shared slot a [`QuoteTicket`] waits on and an executor fills.
#[derive(Debug)]
struct TicketState {
    slot: Mutex<Option<Result<Quote, GatewayError>>>,
    ready: Condvar,
}

impl TicketState {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn complete(&self, result: Result<Quote, GatewayError>) {
        let mut slot = self.slot.lock().expect("ticket poisoned");
        *slot = Some(result);
        self.ready.notify_all();
    }
}

/// Per-request completion handle returned by [`Gateway::submit`]: a
/// one-shot future the caller blocks on (or polls) for its quote.
#[derive(Debug)]
pub struct QuoteTicket {
    state: Arc<TicketState>,
}

impl QuoteTicket {
    /// Blocks until the quote (or a typed error) is available.
    pub fn wait(self) -> Result<Quote, GatewayError> {
        let mut slot = self.state.slot.lock().expect("ticket poisoned");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.state.ready.wait(slot).expect("ticket poisoned");
        }
    }

    /// Blocks up to `timeout`; `None` when the quote is not ready in time
    /// (the ticket stays valid and can be waited on again).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Quote, GatewayError>> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.state.slot.lock().expect("ticket poisoned");
        loop {
            if let Some(result) = slot.take() {
                return Some(result);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .state
                .ready
                .wait_timeout(slot, deadline - now)
                .expect("ticket poisoned");
            slot = guard;
        }
    }

    /// Non-blocking poll; `None` while the quote is still pending.
    pub fn try_take(&self) -> Option<Result<Quote, GatewayError>> {
        self.state.slot.lock().expect("ticket poisoned").take()
    }
}

/// One admitted request travelling through the pipeline.
struct Pending {
    request: QuoteRequest,
    state: Arc<TicketState>,
    submitted: Instant,
}

/// The bounded ingress queue (bounded via the shared in-flight gauge, so
/// the bound covers queued *and* executing requests).
#[derive(Default)]
struct IngressQueue {
    inner: Mutex<IngressInner>,
    not_empty: Condvar,
}

#[derive(Default)]
struct IngressInner {
    queue: VecDeque<Pending>,
    closed: bool,
}

impl IngressQueue {
    /// Enqueues an admitted request; `false` when the queue is closed.
    fn push(&self, pending: Pending) -> bool {
        let mut inner = self.inner.lock().expect("ingress poisoned");
        if inner.closed {
            return false;
        }
        inner.queue.push_back(pending);
        drop(inner);
        self.not_empty.notify_one();
        true
    }

    fn close(&self) {
        self.inner.lock().expect("ingress poisoned").closed = true;
        self.not_empty.notify_all();
    }

    /// The scheduler's blocking micro-batch drain: waits for a first
    /// request, then keeps draining until the batch holds `max_batch`
    /// requests or `max_delay` has passed since the first one arrived —
    /// whichever comes first. Returns `None` only when the queue is closed
    /// *and* fully drained.
    fn pop_batch(&self, max_batch: usize, max_delay: Duration) -> Option<Vec<Pending>> {
        let mut inner = self.inner.lock().expect("ingress poisoned");
        // Phase 1: wait for the batch's first request.
        while inner.queue.is_empty() {
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("ingress poisoned");
        }
        let deadline = Instant::now() + max_delay;
        let mut batch = Vec::with_capacity(max_batch.min(inner.queue.len()));
        // Phase 2: drain until full or the deadline fires.
        loop {
            while batch.len() < max_batch {
                match inner.queue.pop_front() {
                    Some(pending) => batch.push(pending),
                    None => break,
                }
            }
            if batch.len() >= max_batch || inner.closed {
                return Some(batch);
            }
            let now = Instant::now();
            if now >= deadline {
                return Some(batch);
            }
            let (guard, timeout) = self
                .not_empty
                .wait_timeout(inner, deadline - now)
                .expect("ingress poisoned");
            inner = guard;
            if timeout.timed_out() && inner.queue.is_empty() {
                return Some(batch);
            }
        }
    }
}

/// The scheduler → executor batch queue (unbounded; its length is already
/// bounded by admission control upstream).
#[derive(Default)]
struct BatchQueue {
    inner: Mutex<BatchInner>,
    not_empty: Condvar,
}

#[derive(Default)]
struct BatchInner {
    queue: VecDeque<Vec<Pending>>,
    closed: bool,
}

impl BatchQueue {
    fn push(&self, batch: Vec<Pending>) {
        let mut inner = self.inner.lock().expect("batch queue poisoned");
        inner.queue.push_back(batch);
        drop(inner);
        self.not_empty.notify_one();
    }

    fn close(&self) {
        self.inner.lock().expect("batch queue poisoned").closed = true;
        self.not_empty.notify_all();
    }

    fn pop(&self) -> Option<Vec<Pending>> {
        let mut inner = self.inner.lock().expect("batch queue poisoned");
        loop {
            if let Some(batch) = inner.queue.pop_front() {
                return Some(batch);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("batch queue poisoned");
        }
    }
}

/// State shared by the gateway handle, the scheduler and the executors.
/// The admission counter lives inside [`Telemetry`] (it doubles as the
/// queue-depth gauge), so there is exactly one in-flight count.
struct Shared {
    service: Arc<PricingService>,
    config: GatewayConfig,
    telemetry: Telemetry,
    ingress: IngressQueue,
    batches: BatchQueue,
    /// The admission journal, when configured. The mutex is held across
    /// `append` *and* the ingress push, so on-disk frame order is exactly
    /// the order requests entered the pipeline.
    journal: Option<Mutex<JournalWriter>>,
    /// Requests fully processed by executors — the journal position the
    /// next periodic snapshot is tagged with (meaningful with one
    /// executor, where processing order equals admission order).
    frames_processed: AtomicU64,
}

/// The concurrent online pricing gateway. See the crate docs for the
/// design and determinism contract.
pub struct Gateway {
    shared: Arc<Shared>,
    scheduler: Option<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
}

impl fmt::Debug for Gateway {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Gateway")
            .field("config", &self.shared.config)
            .field("executors", &self.executors.len())
            .finish()
    }
}

impl Gateway {
    /// Starts a gateway over a shared frozen [`PricingService`]: spawns the
    /// scheduler thread plus `config.executors` executor threads.
    ///
    /// # Panics
    ///
    /// Panics when a configured admission journal cannot be created; use
    /// [`Gateway::try_start`] to handle that as a typed error.
    pub fn start(service: Arc<PricingService>, config: GatewayConfig) -> Self {
        Self::try_start(service, config).expect("gateway start failed")
    }

    /// Starts a gateway, surfacing journal-creation failures as
    /// [`GatewayError::Journal`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`GatewayError::Journal`] when `config.journal` is set and
    /// the journal file cannot be created.
    pub fn try_start(
        service: Arc<PricingService>,
        config: GatewayConfig,
    ) -> Result<Self, GatewayError> {
        let journal = match &config.journal {
            Some(options) => Some(Mutex::new(
                options
                    .open()
                    .map_err(|e| GatewayError::Journal(e.to_string()))?,
            )),
            None => None,
        };
        let executor_count = config.executors.max(1);
        let shared = Arc::new(Shared {
            service,
            config,
            telemetry: Telemetry::new(),
            ingress: IngressQueue::default(),
            batches: BatchQueue::default(),
            journal,
            frames_processed: AtomicU64::new(0),
        });

        let scheduler = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("vtm-gateway-scheduler".to_string())
                .spawn(move || scheduler_loop(&shared))
                .expect("spawn scheduler")
        };
        let executors = (0..executor_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("vtm-gateway-executor-{i}"))
                    .spawn(move || executor_loop(&shared))
                    .expect("spawn executor")
            })
            .collect();

        Ok(Self {
            shared,
            scheduler: Some(scheduler),
            executors,
        })
    }

    /// The gateway configuration.
    pub fn config(&self) -> &GatewayConfig {
        &self.shared.config
    }

    /// The underlying pricing service.
    pub fn service(&self) -> &PricingService {
        &self.shared.service
    }

    /// Submits one quote request; returns immediately with a completion
    /// handle. Malformed requests and overload are rejected here, before
    /// anything is enqueued.
    ///
    /// # Errors
    ///
    /// [`GatewayError::BadFeatureBlock`] for a wrong feature width,
    /// [`GatewayError::Overloaded`] when `queue_capacity` requests are
    /// already in flight (backpressure — retry later), and
    /// [`GatewayError::ShutDown`] after shutdown.
    pub fn submit(&self, request: QuoteRequest) -> Result<QuoteTicket, GatewayError> {
        let expected = self.shared.service.config().features_per_round;
        if request.features.len() != expected {
            return Err(GatewayError::BadFeatureBlock {
                session: request.session,
                expected,
                got: request.features.len(),
            });
        }
        // Admission control: atomically claim an in-flight slot or reject.
        let capacity = self.shared.config.queue_capacity as u64;
        if !self.shared.telemetry.try_admit(capacity) {
            self.shared.telemetry.record_reject();
            return Err(GatewayError::Overloaded {
                queue_capacity: self.shared.config.queue_capacity,
            });
        }
        // Book the submission BEFORE enqueueing: once the request is in the
        // queue an executor may complete it at any moment, and a snapshot
        // must never observe completed > submitted.
        self.shared.telemetry.record_submit();
        let state = TicketState::new();
        let pending = Pending {
            request,
            state: Arc::clone(&state),
            submitted: Instant::now(),
        };
        // Journal the admission and enqueue under ONE lock, so the on-disk
        // frame order is exactly the order requests enter the pipeline
        // (replay order == admission order). A failed append un-admits the
        // request — the journal never under-records what the service saw.
        let pushed = match &self.shared.journal {
            Some(journal) => {
                let mut writer = journal.lock().expect("journal poisoned");
                let before = writer.bytes_written();
                if let Err(err) = writer.append(&pending.request) {
                    drop(writer);
                    self.shared.telemetry.record_abort();
                    return Err(GatewayError::Journal(err.to_string()));
                }
                self.shared
                    .telemetry
                    .record_journal_append(writer.bytes_written() - before);
                self.shared.ingress.push(pending)
            }
            None => self.shared.ingress.push(pending),
        };
        if !pushed {
            self.shared.telemetry.record_abort();
            return Err(GatewayError::ShutDown);
        }
        Ok(QuoteTicket { state })
    }

    /// Convenience: submit and block for the quote.
    ///
    /// # Errors
    ///
    /// Same as [`Gateway::submit`], plus any executor-side failure.
    pub fn quote(&self, request: QuoteRequest) -> Result<Quote, GatewayError> {
        self.submit(request)?.wait()
    }

    /// A point-in-time telemetry snapshot (counters, queue depth,
    /// latency/batch-size histograms with p50/p95/p99).
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.shared.telemetry.snapshot()
    }

    /// Stops accepting new requests, drains every in-flight request to
    /// completion, joins all worker threads and returns the final
    /// telemetry snapshot. Called implicitly on drop.
    pub fn shutdown(mut self) -> TelemetrySnapshot {
        self.shutdown_inner();
        self.shared.telemetry.snapshot()
    }

    fn shutdown_inner(&mut self) {
        self.shared.ingress.close();
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
        for handle in self.executors.drain(..) {
            let _ = handle.join();
        }
        // Make the journal crash-durable before reporting shutdown complete:
        // every admitted request has been processed, so the synced journal
        // replays to exactly the service's final state.
        if let Some(journal) = &self.shared.journal {
            if let Ok(mut writer) = journal.lock() {
                let _ = writer.sync();
            }
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Scheduler thread: drain micro-batches off the ingress queue until it is
/// closed and empty, then close the batch queue so executors wind down.
fn scheduler_loop(shared: &Shared) {
    let max_batch = shared.config.max_batch;
    let max_delay = shared.config.max_delay;
    while let Some(batch) = shared.ingress.pop_batch(max_batch, max_delay) {
        if batch.is_empty() {
            continue;
        }
        shared.telemetry.record_batch(batch.len());
        shared.batches.push(batch);
    }
    shared.batches.close();
}

/// Executor thread: price whole batches against the shared frozen service
/// and resolve every ticket.
fn executor_loop(shared: &Shared) {
    while let Some(batch) = shared.batches.pop() {
        let refs: Vec<&QuoteRequest> = batch.iter().map(|p| &p.request).collect();
        match shared.service.quote_refs(&refs) {
            Ok(quotes) => {
                let processed = batch.len();
                for (pending, quote) in batch.into_iter().zip(quotes) {
                    let latency_us = pending.submitted.elapsed().as_micros() as u64;
                    shared.telemetry.record_completion(latency_us);
                    pending.state.complete(Ok(quote));
                }
                maybe_snapshot(shared, processed as u64);
            }
            Err(err) => {
                // Feature widths were validated at submit time, so this is
                // an internal error; fail the whole batch with it.
                let message = err.to_string();
                for pending in batch {
                    shared.telemetry.record_failure();
                    pending
                        .state
                        .complete(Err(GatewayError::Service(message.clone())));
                }
            }
        }
    }
}

/// Executor-side periodic snapshotting: after a batch completes, capture
/// the service state whenever the processed-request count crosses a
/// `snapshot_every` boundary, tagged with the exact journal position.
///
/// Only taken with a single executor — there, batches finish in admission
/// order, so "requests processed" IS the journal prefix the state is
/// consistent with. With more executors the mapping breaks (batches finish
/// out of order) and snapshots are skipped; crash recovery then replays
/// the whole journal from genesis.
fn maybe_snapshot(shared: &Shared, processed: u64) {
    let Some(options) = &shared.config.journal else {
        return;
    };
    if options.snapshot_every == 0 || shared.config.executors != 1 {
        return;
    }
    let total = shared
        .frames_processed
        .fetch_add(processed, Ordering::Relaxed)
        + processed;
    if total / options.snapshot_every == (total - processed) / options.snapshot_every {
        return;
    }
    // Between the quote_refs above and here no other executor runs, so the
    // service state is exactly "the first `total` admitted requests". Push
    // the journal to disk first: a snapshot must never claim more frames
    // than the journal can replay.
    if let Some(journal) = &shared.journal {
        if journal
            .lock()
            .map(|mut writer| writer.sync().is_ok())
            .unwrap_or(false)
        {
            let snapshot = StateSnapshot::capture(&shared.service, total);
            if snapshot
                .save_to(snapshot_path(&options.path, total))
                .is_ok()
            {
                shared.telemetry.record_snapshot();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builders_clamp() {
        let config = GatewayConfig::default()
            .with_max_batch(0)
            .with_queue_capacity(0)
            .with_executors(0)
            .with_max_delay(Duration::from_micros(250));
        assert_eq!(config.max_batch, 1);
        assert_eq!(config.queue_capacity, 1);
        assert_eq!(config.executors, 1);
        assert_eq!(config.max_delay, Duration::from_micros(250));
    }

    #[test]
    fn errors_display() {
        for err in [
            GatewayError::Overloaded { queue_capacity: 4 },
            GatewayError::BadFeatureBlock {
                session: 1,
                expected: 2,
                got: 3,
            },
            GatewayError::Service("boom".to_string()),
            GatewayError::ShutDown,
        ] {
            assert!(!err.to_string().is_empty());
        }
    }
}
