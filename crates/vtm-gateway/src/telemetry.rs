//! Lock-free serving telemetry: atomic counters, a fixed-bucket log-scale
//! latency histogram and a batch-size histogram, snapshotted on demand.
//!
//! Every hot-path record is a handful of relaxed atomic increments — the
//! gateway's request path never takes a lock for measurement. Percentiles
//! are derived from the histogram at snapshot time: each latency bucket `b`
//! covers `[2^b, 2^(b+1))` microseconds, and a reported percentile is the
//! upper bound of the first bucket whose cumulative count reaches the rank
//! (an over-estimate by at most 2x, which is the standard trade of
//! fixed-bucket histograms — see e.g. Prometheus or HdrHistogram's
//! coarsest setting).

use std::sync::atomic::{AtomicU64, Ordering};

use vtm_obs::{HistogramSnapshot, LogHistogram, MetricsRegistry, StageSnapshot};

use crate::health::HealthState;

// The bucket math lives in `vtm-obs` (one copy for gateway, fabric and the
// benches); re-exported here so existing `vtm_gateway::latency_bucket`-style
// callers keep compiling.
pub use vtm_obs::{latency_bucket, percentile_from_buckets, LATENCY_BUCKETS};

/// Linear batch-size buckets `1..=MAX_TRACKED_BATCH`; larger batches land
/// in the last bucket.
pub const MAX_TRACKED_BATCH: usize = 64;

/// The live, shared telemetry sink (one per gateway, behind an `Arc`).
#[derive(Debug)]
pub struct Telemetry {
    /// Requests admitted past admission control.
    submitted: AtomicU64,
    /// Requests completed with a quote.
    completed: AtomicU64,
    /// Requests rejected by admission control (backpressure).
    rejected: AtomicU64,
    /// Requests failed by an executor-side service error.
    failed: AtomicU64,
    /// Requests expired by the scheduler before batch formation because
    /// their deadline had already passed.
    expired: AtomicU64,
    /// Submissions rejected by the health controller's Shedding state
    /// (distinct from `rejected`, which is the hard admission bound).
    shed: AtomicU64,
    /// Submissions answered from the session-local last-quote cache while
    /// Degraded (these never enter the pipeline).
    degraded_quotes: AtomicU64,
    /// Executor batch panics caught by the supervisor layer.
    panics: AtomicU64,
    /// Executor threads respawned after a panic.
    restarts: AtomicU64,
    /// Scheduler-watchdog activations (a dead scheduler detected and its
    /// pending work failed instead of hanging).
    watchdog_fires: AtomicU64,
    /// Journal append retries after a transient append failure.
    journal_retries: AtomicU64,
    /// Admissions that proceeded without a journal frame under the
    /// `DegradeWithoutJournal` bypass policy.
    journal_bypassed: AtomicU64,
    /// Batches flushed by the scheduler.
    batches: AtomicU64,
    /// Admitted-but-not-yet-completed requests — both the queue-depth
    /// gauge and the admission counter (see [`Telemetry::try_admit`]).
    in_flight: AtomicU64,
    /// Admissions appended to the audit journal.
    journal_frames: AtomicU64,
    /// Journal bytes written (container framing included).
    journal_bytes: AtomicU64,
    /// Periodic state snapshots written next to the journal.
    snapshots: AtomicU64,
    latency: LogHistogram,
    batch_sizes: [AtomicU64; MAX_TRACKED_BATCH],
    batch_size_sum: AtomicU64,
    batch_size_max: AtomicU64,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// A zeroed sink.
    pub fn new() -> Self {
        Self {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            degraded_quotes: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            watchdog_fires: AtomicU64::new(0),
            journal_retries: AtomicU64::new(0),
            journal_bypassed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            journal_frames: AtomicU64::new(0),
            journal_bytes: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
            latency: LogHistogram::new(),
            batch_sizes: std::array::from_fn(|_| AtomicU64::new(0)),
            batch_size_sum: AtomicU64::new(0),
            batch_size_max: AtomicU64::new(0),
        }
    }

    /// Atomically claims an in-flight slot when fewer than `capacity` are
    /// taken — the single admission counter the gateway bounds itself on
    /// (also the queue-depth gauge, so the two can never disagree).
    pub(crate) fn try_admit(&self, capacity: u64) -> bool {
        self.in_flight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < capacity).then_some(n + 1)
            })
            .is_ok()
    }

    /// Records an admitted submission. Called *before* the request is
    /// enqueued so a snapshot can never observe `completed > submitted`.
    pub(crate) fn record_submit(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Rolls back an admitted submission whose enqueue failed (the
    /// shutdown race): releases the in-flight slot and the submit count.
    pub(crate) fn record_abort(&self) {
        self.submitted.fetch_sub(1, Ordering::Relaxed);
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn record_reject(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        let idx = size.clamp(1, MAX_TRACKED_BATCH) - 1;
        self.batch_sizes[idx].fetch_add(1, Ordering::Relaxed);
        self.batch_size_sum
            .fetch_add(size as u64, Ordering::Relaxed);
        self.batch_size_max
            .fetch_max(size as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_completion(&self, latency_us: u64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        self.latency.record(latency_us);
    }

    pub(crate) fn record_failure(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records a queued request expired by the scheduler (it held an
    /// in-flight slot, which is released here).
    pub(crate) fn record_expired(&self) {
        self.expired.fetch_add(1, Ordering::Relaxed);
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records a submission shed at the door (no slot was ever claimed).
    pub(crate) fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a degraded cache-served quote (never entered the pipeline).
    pub(crate) fn record_degraded_quote(&self) {
        self.degraded_quotes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one caught executor batch panic.
    pub(crate) fn record_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one executor respawn by the supervisor.
    pub(crate) fn record_restart(&self) {
        self.restarts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one scheduler-watchdog activation.
    pub(crate) fn record_watchdog_fire(&self) {
        self.watchdog_fires.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one retried journal append attempt.
    pub(crate) fn record_journal_retry(&self) {
        self.journal_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one admission that bypassed the journal.
    pub(crate) fn record_journal_bypass(&self) {
        self.journal_bypassed.fetch_add(1, Ordering::Relaxed);
    }

    /// A lock-free copy of the cumulative latency histogram (the health
    /// controller differences consecutive copies into completion windows).
    pub(crate) fn latency_buckets_now(&self) -> Vec<u64> {
        self.latency.buckets_now()
    }

    /// Records one admission appended to the journal (`bytes` framed).
    pub(crate) fn record_journal_append(&self, bytes: u64) {
        self.journal_frames.fetch_add(1, Ordering::Relaxed);
        self.journal_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one periodic state snapshot written to disk.
    pub(crate) fn record_snapshot(&self) {
        self.snapshots.fetch_add(1, Ordering::Relaxed);
    }

    /// Admitted-but-not-yet-completed requests right now.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of every counter plus derived percentiles.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let latency = self.latency.snapshot();
        let batch_sizes: Vec<u64> = self
            .batch_sizes
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let completed = self.completed.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        TelemetrySnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            rejected: self.rejected.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            degraded_quotes: self.degraded_quotes.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
            watchdog_fires: self.watchdog_fires.load(Ordering::Relaxed),
            journal_retries: self.journal_retries.load(Ordering::Relaxed),
            journal_bypassed: self.journal_bypassed.load(Ordering::Relaxed),
            health: HealthState::Healthy,
            precision: "f64",
            shard: 0,
            batches,
            queue_depth: self.in_flight.load(Ordering::Relaxed),
            journal_frames: self.journal_frames.load(Ordering::Relaxed),
            journal_bytes: self.journal_bytes.load(Ordering::Relaxed),
            snapshots: self.snapshots.load(Ordering::Relaxed),
            latency_p50_us: latency.p50_us(),
            latency_p95_us: latency.p95_us(),
            latency_p99_us: latency.p99_us(),
            latency_mean_us: latency.mean_us(),
            latency_max_us: latency.max_us,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                self.batch_size_sum.load(Ordering::Relaxed) as f64 / batches as f64
            },
            max_batch_size: self.batch_size_max.load(Ordering::Relaxed),
            latency_buckets: latency.buckets,
            batch_size_buckets: batch_sizes,
            stages: None,
            journal_append_mean_us: 0.0,
            journal_append_max_us: 0,
        }
    }
}

/// A point-in-time view of the gateway's counters and histograms.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Requests admitted past admission control.
    pub submitted: u64,
    /// Requests completed with a quote.
    pub completed: u64,
    /// Requests rejected with backpressure.
    pub rejected: u64,
    /// Requests failed by a service error.
    pub failed: u64,
    /// Requests expired by the scheduler because their deadline passed
    /// before batch formation.
    pub expired: u64,
    /// Submissions rejected while the health controller was Shedding.
    pub shed: u64,
    /// Submissions answered from the degraded last-quote cache.
    pub degraded_quotes: u64,
    /// Executor batch panics caught and contained.
    pub panics: u64,
    /// Executor threads respawned after a panic.
    pub restarts: u64,
    /// Scheduler-watchdog activations.
    pub watchdog_fires: u64,
    /// Journal append retries after transient failures.
    pub journal_retries: u64,
    /// Admissions that proceeded without a journal frame (bypass policy).
    pub journal_bypassed: u64,
    /// The health controller's state at snapshot time (always
    /// [`HealthState::Healthy`] when no health controller is configured).
    pub health: HealthState,
    /// Forward-pass precision of the serving policy (`"f64"` or `"f32"`),
    /// copied from the service configuration so capacity reports name the
    /// numeric mode they were measured under (see `docs/NUMERICS.md`).
    pub precision: &'static str,
    /// Fabric shard id of the gateway this snapshot came from, copied from
    /// [`crate::GatewayConfig::shard`] (0 for a standalone gateway).
    pub shard: usize,
    /// Batches flushed by the scheduler.
    pub batches: u64,
    /// Admitted-but-not-yet-completed requests at snapshot time.
    pub queue_depth: u64,
    /// Admissions appended to the audit journal (0 when journaling is
    /// off; equals `submitted` minus shutdown-race aborts when on).
    pub journal_frames: u64,
    /// Journal bytes written, container framing included.
    pub journal_bytes: u64,
    /// Periodic state snapshots written next to the journal.
    pub snapshots: u64,
    /// Median completion latency (bucket upper bound, µs).
    pub latency_p50_us: u64,
    /// 95th-percentile completion latency (bucket upper bound, µs).
    pub latency_p95_us: u64,
    /// 99th-percentile completion latency (bucket upper bound, µs).
    pub latency_p99_us: u64,
    /// Mean completion latency (exact, µs).
    pub latency_mean_us: f64,
    /// Maximum completion latency (exact, µs).
    pub latency_max_us: u64,
    /// Mean flushed batch size (exact).
    pub mean_batch_size: f64,
    /// Largest flushed batch.
    pub max_batch_size: u64,
    /// Raw log-scale latency bucket counts (`[2^b, 2^(b+1))` µs).
    pub latency_buckets: Vec<u64>,
    /// Raw batch-size bucket counts (size `i+1`; last bucket = larger).
    pub batch_size_buckets: Vec<u64>,
    /// Per-stage latency decomposition from sampled trace records (`None`
    /// when tracing is disabled; see `docs/OBSERVABILITY.md`).
    pub stages: Option<StageSnapshot>,
    /// Mean journal append cost measured inside the writer (µs, exact over
    /// *every* append, not just sampled ones; 0 when not journaling).
    pub journal_append_mean_us: f64,
    /// Slowest single journal append (µs; 0 when not journaling).
    pub journal_append_max_us: u64,
}

impl TelemetrySnapshot {
    /// Renders the snapshot as a JSON object (no trailing newline), in the
    /// same hand-rolled dependency-free style as the `results/` reports.
    pub fn to_json(&self) -> String {
        let nonzero = |buckets: &[u64], label: &str| -> String {
            let entries: Vec<String> = buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| format!("{{\"{label}\": {i}, \"count\": {c}}}"))
                .collect();
            format!("[{}]", entries.join(", "))
        };
        format!(
            "{{\"submitted\": {}, \"completed\": {}, \"rejected\": {}, \"failed\": {}, \
             \"batches\": {}, \"queue_depth\": {}, \"health\": \"{}\", \
             \"precision\": \"{}\", \"shard\": {}, \
             \"faults\": {{\"expired\": {}, \"shed\": {}, \"degraded_quotes\": {}, \
             \"panics\": {}, \"restarts\": {}, \"watchdog_fires\": {}}}, \
             \"journal\": {{\"frames\": {}, \"bytes\": {}, \"snapshots\": {}, \
             \"retries\": {}, \"bypassed\": {}, \"append_mean_us\": {:.1}, \
             \"append_max_us\": {}}}, \
             \"latency_us\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"mean\": {:.1}, \"max\": {}}}, \
             \"batch_size\": {{\"mean\": {:.2}, \"max\": {}}}, \
             \"stages\": {}, \
             \"latency_buckets\": {}, \"batch_size_buckets\": {}}}",
            self.submitted,
            self.completed,
            self.rejected,
            self.failed,
            self.batches,
            self.queue_depth,
            self.health.as_str(),
            self.precision,
            self.shard,
            self.expired,
            self.shed,
            self.degraded_quotes,
            self.panics,
            self.restarts,
            self.watchdog_fires,
            self.journal_frames,
            self.journal_bytes,
            self.snapshots,
            self.journal_retries,
            self.journal_bypassed,
            self.journal_append_mean_us,
            self.journal_append_max_us,
            self.latency_p50_us,
            self.latency_p95_us,
            self.latency_p99_us,
            self.latency_mean_us,
            self.latency_max_us,
            self.mean_batch_size,
            self.max_batch_size,
            self.stages
                .as_ref()
                .map_or_else(|| "null".to_string(), StageSnapshot::to_json),
            nonzero(&self.latency_buckets, "log2_us"),
            nonzero(&self.batch_size_buckets, "size_minus_1"),
        )
    }

    /// The end-to-end completion-latency histogram as a shared
    /// [`HistogramSnapshot`] (for [`MetricsRegistry`] exposition and
    /// cross-shard merging). The sum is reconstructed from the exact mean.
    pub fn latency_histogram(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.completed,
            sum_us: (self.latency_mean_us * self.completed as f64).round() as u64,
            max_us: self.latency_max_us,
            buckets: self.latency_buckets.clone(),
        }
    }

    /// Registers every counter, gauge and histogram of this snapshot into a
    /// [`MetricsRegistry`] under the `vtm_gateway_` namespace, tagging each
    /// sample with `labels` (plus `stage` for the per-stage histograms).
    pub fn register_metrics(&self, registry: &mut MetricsRegistry, labels: &[(&str, &str)]) {
        let counters: [(&str, &str, u64); 15] = [
            (
                "vtm_gateway_submitted_total",
                "Requests admitted past admission control.",
                self.submitted,
            ),
            (
                "vtm_gateway_completed_total",
                "Requests completed with a quote.",
                self.completed,
            ),
            (
                "vtm_gateway_rejected_total",
                "Requests rejected with backpressure.",
                self.rejected,
            ),
            (
                "vtm_gateway_failed_total",
                "Requests failed by a service error.",
                self.failed,
            ),
            (
                "vtm_gateway_expired_total",
                "Requests expired before batch formation.",
                self.expired,
            ),
            (
                "vtm_gateway_shed_total",
                "Submissions shed by the health controller.",
                self.shed,
            ),
            (
                "vtm_gateway_degraded_quotes_total",
                "Quotes served from the degraded cache.",
                self.degraded_quotes,
            ),
            (
                "vtm_gateway_panics_total",
                "Executor batch panics caught.",
                self.panics,
            ),
            (
                "vtm_gateway_restarts_total",
                "Executor threads respawned.",
                self.restarts,
            ),
            (
                "vtm_gateway_watchdog_fires_total",
                "Scheduler-watchdog activations.",
                self.watchdog_fires,
            ),
            (
                "vtm_gateway_journal_retries_total",
                "Journal append retries.",
                self.journal_retries,
            ),
            (
                "vtm_gateway_journal_bypassed_total",
                "Admissions without a journal frame.",
                self.journal_bypassed,
            ),
            (
                "vtm_gateway_batches_total",
                "Batches flushed by the scheduler.",
                self.batches,
            ),
            (
                "vtm_gateway_journal_frames_total",
                "Admissions appended to the journal.",
                self.journal_frames,
            ),
            (
                "vtm_gateway_journal_bytes_total",
                "Journal bytes written.",
                self.journal_bytes,
            ),
        ];
        for (name, help, value) in counters {
            registry.counter(name, help, labels, value);
        }
        registry.gauge(
            "vtm_gateway_queue_depth",
            "Admitted-but-not-yet-completed requests.",
            labels,
            self.queue_depth as f64,
        );
        registry.gauge(
            "vtm_gateway_mean_batch_size",
            "Mean flushed batch size.",
            labels,
            self.mean_batch_size,
        );
        registry.gauge(
            "vtm_gateway_journal_append_mean_us",
            "Mean journal append cost measured inside the writer (us).",
            labels,
            self.journal_append_mean_us,
        );
        registry.histogram(
            "vtm_gateway_latency_us",
            "End-to-end completion latency (log2 us buckets).",
            labels,
            &self.latency_histogram(),
        );
        if let Some(stages) = &self.stages {
            registry.counter(
                "vtm_gateway_traced_total",
                "Sampled requests folded into the stage histograms.",
                labels,
                stages.traced,
            );
            let named: [(&str, &HistogramSnapshot); 5] = [
                ("queue_wait", &stages.queue_wait),
                ("batch_form", &stages.batch_form),
                ("inference", &stages.inference),
                ("resolve", &stages.resolve),
                ("journal_append", &stages.journal_append),
            ];
            for (stage, histogram) in named {
                let mut stage_labels: Vec<(&str, &str)> = labels.to_vec();
                stage_labels.push(("stage", stage));
                registry.histogram(
                    "vtm_gateway_stage_us",
                    "Per-stage latency decomposition from sampled traces (log2 us buckets).",
                    &stage_labels,
                    histogram,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_buckets_are_log2_microseconds() {
        assert_eq!(latency_bucket(0), 0);
        assert_eq!(latency_bucket(1), 0);
        assert_eq!(latency_bucket(2), 1);
        assert_eq!(latency_bucket(3), 1);
        assert_eq!(latency_bucket(4), 2);
        assert_eq!(latency_bucket(1024), 10);
        assert_eq!(latency_bucket(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn percentiles_report_bucket_upper_bounds() {
        let t = Telemetry::new();
        // 98 fast requests (~8 µs), 2 slow (~4096 µs).
        for _ in 0..98 {
            assert!(t.try_admit(1000));
            t.record_submit();
            t.record_completion(8);
        }
        for _ in 0..2 {
            assert!(t.try_admit(1000));
            t.record_submit();
            t.record_completion(4096);
        }
        let snap = t.snapshot();
        assert_eq!(snap.completed, 100);
        assert_eq!(snap.queue_depth, 0);
        assert_eq!(snap.latency_p50_us, 16); // bucket [8,16) -> upper bound 16
        assert_eq!(snap.latency_p95_us, 16);
        assert_eq!(snap.latency_p99_us, 8192); // bucket [4096,8192)
        assert_eq!(snap.latency_max_us, 4096);
        assert!((snap.latency_mean_us - (98.0 * 8.0 + 2.0 * 4096.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_percentiles_are_zero() {
        let snap = Telemetry::new().snapshot();
        assert_eq!(snap.latency_p50_us, 0);
        assert_eq!(snap.latency_p99_us, 0);
        assert_eq!(snap.latency_mean_us, 0.0);
        assert_eq!(snap.mean_batch_size, 0.0);
    }

    #[test]
    fn batch_histogram_tracks_sizes() {
        let t = Telemetry::new();
        t.record_batch(1);
        t.record_batch(4);
        t.record_batch(4);
        t.record_batch(500); // clamped into the last bucket
        let snap = t.snapshot();
        assert_eq!(snap.batches, 4);
        assert_eq!(snap.batch_size_buckets[0], 1);
        assert_eq!(snap.batch_size_buckets[3], 2);
        assert_eq!(snap.batch_size_buckets[MAX_TRACKED_BATCH - 1], 1);
        assert_eq!(snap.max_batch_size, 500);
        assert!((snap.mean_batch_size - (1.0 + 4.0 + 4.0 + 500.0) / 4.0).abs() < 1e-9);
    }

    #[test]
    fn admission_counter_is_the_queue_depth_gauge() {
        let t = Telemetry::new();
        assert!(t.try_admit(2));
        assert!(t.try_admit(2));
        assert!(!t.try_admit(2), "third admit must fail at capacity 2");
        assert_eq!(t.in_flight(), 2);
        t.record_submit();
        t.record_abort(); // enqueue failed: slot released, submit undone
        assert_eq!(t.in_flight(), 1);
        assert!(t.try_admit(2));
        t.record_submit();
        t.record_completion(10);
        t.record_submit();
        t.record_failure();
        let snap = t.snapshot();
        assert_eq!(snap.queue_depth, 0);
        assert_eq!(snap.submitted, 2);
        assert_eq!(snap.completed + snap.failed, 2);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let t = Telemetry::new();
        assert!(t.try_admit(8));
        t.record_submit();
        t.record_batch(1);
        t.record_completion(100);
        t.record_reject();
        t.record_shed();
        t.record_panic();
        t.record_restart();
        t.record_watchdog_fire();
        t.record_journal_retry();
        t.record_journal_bypass();
        assert!(t.try_admit(8));
        t.record_submit();
        t.record_expired();
        t.record_degraded_quote();
        let json = t.snapshot().to_json();
        assert!(json.contains("\"submitted\": 2"));
        assert!(json.contains("\"rejected\": 1"));
        assert!(json.contains("\"p99\""));
        assert!(json.contains("\"batch_size_buckets\""));
        assert!(json.contains("\"health\": \"healthy\""));
        assert!(json.contains(
            "\"faults\": {\"expired\": 1, \"shed\": 1, \"degraded_quotes\": 1, \
             \"panics\": 1, \"restarts\": 1, \"watchdog_fires\": 1}"
        ));
        assert!(json.contains("\"retries\": 1, \"bypassed\": 1"));
    }

    #[test]
    fn fault_counters_release_in_flight_slots_correctly() {
        let t = Telemetry::new();
        // expired releases a claimed slot; shed and degraded never claim one.
        assert!(t.try_admit(4));
        t.record_submit();
        t.record_expired();
        t.record_shed();
        t.record_degraded_quote();
        let snap = t.snapshot();
        assert_eq!(snap.queue_depth, 0);
        assert_eq!(snap.expired, 1);
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.degraded_quotes, 1);
        assert_eq!(snap.submitted, 1);
        assert_eq!(snap.completed, 0);
    }
}
