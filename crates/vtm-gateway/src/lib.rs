//! # vtm-gateway — the concurrent online pricing gateway
//!
//! `vtm-serve`'s [`PricingService`](vtm_serve::PricingService) answers
//! *caller-formed* batches: one thread assembles a round of requests and
//! gets quotes back. A deployed MSP front-end faces the opposite shape —
//! many independent VMU clients, each submitting one request at an
//! arbitrary time, expecting one answer under a latency budget. This crate
//! closes that gap with a thread-per-stage gateway (plain `std` threads,
//! `Mutex`/`Condvar` and atomics — no async runtime):
//!
//! * **dynamic micro-batching** — a scheduler thread drains submissions
//!   into batches, flushing on `max_batch` *or* `max_delay` after the first
//!   request, whichever comes first; under load batches fill instantly
//!   (throughput), under trickle traffic the deadline caps added latency;
//! * **executor pool** — flushed batches are priced by `N` executor
//!   threads sharing one frozen `Arc<PricingService>` via the
//!   zero-copy batch-slice entry point
//!   ([`quote_refs`](vtm_serve::PricingService::quote_refs));
//! * **admission control** — at most `queue_capacity` requests may be in
//!   flight; submissions beyond that are rejected immediately with
//!   [`GatewayError::Overloaded`] (backpressure) instead of growing queues
//!   without bound;
//! * **bounded sessions** — the underlying service's
//!   [`SessionStore`](vtm_serve::SessionStore) bounds per-shard session
//!   state with LRU/TTL eviction, so a million distinct VMU ids cannot
//!   exhaust memory;
//! * **telemetry** — atomic counters plus fixed-bucket log-scale
//!   histograms yield p50/p95/p99 latency, queue depth, batch-size
//!   distribution and reject counts as a [`TelemetrySnapshot`], with no
//!   lock on the request path;
//! * **stage tracing** — with [`GatewayConfig::with_tracing`], 1-in-N
//!   sampled requests carry a `Copy` trace record through the pipeline,
//!   decomposing end-to-end latency into admission / queue-wait /
//!   batch-form / inference / resolve stages
//!   ([`TelemetrySnapshot::stages`], [`Gateway::trace_records`]); a
//!   logical-clock mode makes the decomposition bit-reproducible in tests
//!   (see `docs/OBSERVABILITY.md`).
//!
//! # Fault model
//!
//! The gateway is supervised: executors price batches under
//! `catch_unwind`, so a panicked batch fails only its own tickets
//! ([`GatewayError::ExecutorFailed`]) and the supervisor thread respawns
//! the executor; a watchdog detects a dead scheduler and fails pending
//! tickets ([`GatewayError::SchedulerStalled`]) instead of hanging them.
//! Requests can carry deadlines
//! ([`GatewayConfig::with_default_deadline`]) — the scheduler expires
//! stale queued work before batch formation and
//! [`QuoteTicket::wait`] stops blocking at the deadline. An optional
//! three-state health controller ([`HealthConfig`], Healthy → Shedding →
//! Degraded) sheds load with a computed `retry_after` hint and, when
//! degraded, answers from the service's session-local last-quote cache
//! (quotes marked `degraded`). Journal appends get bounded
//! retry-with-backoff and an explicit [`JournalBypassPolicy`], so a bad
//! disk cannot freeze admission. All of it is testable deterministically:
//! a seeded [`FaultPlan`] ([`GatewayConfig::with_faults`]) injects
//! executor panics, scheduler panics, journal i/o errors and artificial
//! batch latency at exact, reproducible points.
//!
//! The liveness invariant is structural: every admitted request resolves
//! its ticket exactly once — on completion, failure, expiry, watchdog
//! sweep or shutdown — so no [`QuoteTicket::wait`] blocks forever under
//! any injected fault.
//!
//! # Determinism contract
//!
//! With a **single executor** and **greedy** inference, gateway output for
//! a given request sequence is bit-identical to calling
//! [`PricingService::quote_batch`](vtm_serve::PricingService::quote_batch)
//! on the same sequence, *no matter how the scheduler happens to slice it
//! into batches*: per-session history updates apply in submission order
//! (single FIFO ingress), batch assembly never changes a forward pass's
//! row values, and greedy quotes depend only on the assembled observation.
//! `tests/determinism.rs` pins this with FNV digests.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use vtm_gateway::{Gateway, GatewayConfig};
//! use vtm_rl::env::ActionSpace;
//! use vtm_rl::ppo::{PpoAgent, PpoConfig};
//! use vtm_serve::{PricingService, QuoteRequest, ServiceConfig};
//!
//! // A freshly initialised policy stands in for a trained checkpoint.
//! let agent = PpoAgent::new(PpoConfig::new(8, 1).with_seed(1), ActionSpace::scalar(5.0, 50.0));
//! let service = Arc::new(
//!     PricingService::from_snapshot(&agent.snapshot(), ServiceConfig::new(4, 2)).unwrap(),
//! );
//! let gateway = Gateway::start(service, GatewayConfig::default().with_max_batch(8));
//!
//! // Concurrent clients submit independently; each gets its own ticket.
//! let ticket_a = gateway.submit(QuoteRequest::new(7, vec![0.5, 0.2])).unwrap();
//! let ticket_b = gateway.submit(QuoteRequest::new(9, vec![0.1, 0.9])).unwrap();
//! let quote_a = ticket_a.wait().unwrap();
//! assert!(quote_a.price() >= 5.0 && quote_a.price() <= 50.0);
//! assert_eq!(ticket_b.wait().unwrap().session, 9);
//!
//! let stats = gateway.shutdown();
//! assert_eq!(stats.completed, 2);
//! assert_eq!(stats.rejected, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fault;
mod gateway;
mod health;
mod telemetry;

pub use fault::FaultPlan;
pub use gateway::{Gateway, GatewayConfig, GatewayError, JournalBypassPolicy, QuoteTicket};
pub use health::{HealthConfig, HealthState};
pub use telemetry::{
    latency_bucket, percentile_from_buckets, Telemetry, TelemetrySnapshot, LATENCY_BUCKETS,
    MAX_TRACKED_BATCH,
};
// Tracing vocabulary, re-exported so gateway users configure tracing
// without a direct vtm-obs dependency.
pub use vtm_obs::{StageBreakdown, StageSnapshot, TraceRecord, TracerConfig};
