//! Deterministic fault injection for the gateway chaos harness.
//!
//! A [`FaultPlan`] is a *seeded, reproducible* description of what should go
//! wrong during a gateway run: which scheduler iteration panics, which batch
//! makes its executor panic, which journal append attempts fail with which
//! [`std::io::ErrorKind`], and how much artificial latency early batches
//! suffer. The plan is pure data — attaching it to a gateway via
//! [`GatewayConfig::with_faults`](crate::GatewayConfig::with_faults) arms the
//! runtime [`FaultState`], whose atomic counters decide, deterministically,
//! when each fault fires.
//!
//! Everything here is `std`-only and test-oriented: a gateway without a plan
//! pays a single `Option` check per injection point.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A deterministic plan of faults to inject into a running gateway.
///
/// Indices are zero-based and deterministic given a deterministic workload:
/// batch indices are assigned by the (single) scheduler in flush order, so
/// with `max_batch == 1` and sequential submission, batch `N` is request
/// `N`; journal indices count append *attempts* (retries included), so an
/// injected error can be healed by the gateway's bounded retry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed identifying the plan (used by the derived-fault helpers, and
    /// recorded so chaos reports can name the exact plan they ran).
    pub seed: u64,
    /// Batch indices whose executor panics *before* pricing the batch
    /// (no service state is mutated by a panicked batch).
    pub executor_panics: Vec<u64>,
    /// Scheduler loop iterations that panic before draining the ingress
    /// queue (iteration 0 panics before any batch is formed).
    pub scheduler_panics: Vec<u64>,
    /// `(append_attempt, kind)` pairs: the given journal append attempt
    /// fails with an [`io::Error`] of that kind instead of writing a frame.
    pub journal_errors: Vec<(u64, io::ErrorKind)>,
    /// `(delay, first_n)`: batches with index `< first_n` sleep `delay`
    /// before pricing (artificial executor latency).
    pub batch_delay: Option<(Duration, u64)>,
}

impl FaultPlan {
    /// An empty plan with the given seed — nothing fails until faults are
    /// added with the builder methods.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            executor_panics: Vec::new(),
            scheduler_panics: Vec::new(),
            journal_errors: Vec::new(),
            batch_delay: None,
        }
    }

    /// Panics the executor that picks up batch `batch_index`.
    pub fn with_executor_panic(mut self, batch_index: u64) -> Self {
        self.executor_panics.push(batch_index);
        self
    }

    /// Adds `count` seed-derived executor panics over the first `within`
    /// batches (splitmix64 over the plan seed, so the same seed always
    /// plans the same panics).
    pub fn with_random_executor_panics(mut self, count: u64, within: u64) -> Self {
        let mut state = self.seed;
        for _ in 0..count.min(within) {
            state = splitmix64(state);
            let batch = state % within.max(1);
            if !self.executor_panics.contains(&batch) {
                self.executor_panics.push(batch);
            }
        }
        self
    }

    /// Panics the scheduler at loop iteration `iteration` (before it drains
    /// anything on that iteration).
    pub fn with_scheduler_panic(mut self, iteration: u64) -> Self {
        self.scheduler_panics.push(iteration);
        self
    }

    /// Fails journal append attempt `attempt` with an error of `kind`.
    pub fn with_journal_error(mut self, attempt: u64, kind: io::ErrorKind) -> Self {
        self.journal_errors.push((attempt, kind));
        self
    }

    /// Sleeps `delay` before pricing each of the first `first_n` batches.
    pub fn with_batch_delay(mut self, delay: Duration, first_n: u64) -> Self {
        self.batch_delay = Some((delay, first_n));
        self
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.executor_panics.is_empty()
            && self.scheduler_panics.is_empty()
            && self.journal_errors.is_empty()
            && self.batch_delay.is_none()
    }
}

/// The classic splitmix64 mixer — the same generator the training stack's
/// seed decorrelation uses, good enough to scatter derived fault indices.
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The armed runtime of a [`FaultPlan`]: the plan plus the atomic counters
/// that track how far each injected-fault stream has advanced.
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    journal_attempts: AtomicU64,
    scheduler_iterations: AtomicU64,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            journal_attempts: AtomicU64::new(0),
            scheduler_iterations: AtomicU64::new(0),
        }
    }

    /// Whether the executor picking up `batch_index` must panic.
    pub(crate) fn executor_panic(&self, batch_index: u64) -> bool {
        self.plan.executor_panics.contains(&batch_index)
    }

    /// The artificial latency `batch_index` must suffer, if any.
    pub(crate) fn batch_delay(&self, batch_index: u64) -> Option<Duration> {
        match self.plan.batch_delay {
            Some((delay, first_n)) if batch_index < first_n => Some(delay),
            _ => None,
        }
    }

    /// Consumes one journal append attempt; `Some(kind)` when this attempt
    /// must fail with an injected i/o error of that kind.
    pub(crate) fn next_journal_append(&self) -> Option<io::ErrorKind> {
        let attempt = self.journal_attempts.fetch_add(1, Ordering::Relaxed);
        self.plan
            .journal_errors
            .iter()
            .find(|(a, _)| *a == attempt)
            .map(|(_, kind)| *kind)
    }

    /// Consumes one scheduler loop iteration; `true` when the scheduler
    /// must panic on it.
    pub(crate) fn next_scheduler_iteration(&self) -> bool {
        let iteration = self.scheduler_iterations.fetch_add(1, Ordering::Relaxed);
        self.plan.scheduler_panics.contains(&iteration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builders_accumulate_faults() {
        let plan = FaultPlan::new(7)
            .with_executor_panic(3)
            .with_scheduler_panic(0)
            .with_journal_error(2, io::ErrorKind::Other)
            .with_batch_delay(Duration::from_millis(5), 4);
        assert_eq!(plan.seed, 7);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new(7).is_empty());
        assert_eq!(plan.executor_panics, vec![3]);
        assert_eq!(plan.journal_errors, vec![(2, io::ErrorKind::Other)]);
    }

    #[test]
    fn derived_panics_are_seed_deterministic() {
        let a = FaultPlan::new(42).with_random_executor_panics(3, 100);
        let b = FaultPlan::new(42).with_random_executor_panics(3, 100);
        assert_eq!(a, b);
        assert!(!a.executor_panics.is_empty());
        assert!(a.executor_panics.iter().all(|&p| p < 100));
        let c = FaultPlan::new(43).with_random_executor_panics(3, 100);
        assert_ne!(a.executor_panics, c.executor_panics);
    }

    #[test]
    fn fault_state_fires_at_exactly_the_planned_indices() {
        let state = FaultState::new(
            FaultPlan::new(1)
                .with_executor_panic(2)
                .with_scheduler_panic(1)
                .with_journal_error(1, io::ErrorKind::WouldBlock)
                .with_batch_delay(Duration::from_millis(3), 2),
        );
        assert!(!state.executor_panic(1));
        assert!(state.executor_panic(2));
        assert_eq!(state.batch_delay(0), Some(Duration::from_millis(3)));
        assert_eq!(state.batch_delay(2), None);
        // Append attempts 0, 1, 2: only attempt 1 fails.
        assert_eq!(state.next_journal_append(), None);
        assert_eq!(state.next_journal_append(), Some(io::ErrorKind::WouldBlock));
        assert_eq!(state.next_journal_append(), None);
        // Scheduler iterations 0, 1: only iteration 1 panics.
        assert!(!state.next_scheduler_iteration());
        assert!(state.next_scheduler_iteration());
    }
}
