//! The fabric: N independent gateway shards per policy arm, deterministic
//! session-hash routing, and atomic arm promotion.
//!
//! # Topology
//!
//! A fabric with `S` shards and `A` arms runs `S × A` fully independent
//! [`Gateway`]s — each with its own scheduler thread, executor pool,
//! session-store-backed [`PricingService`] and (optionally) its own
//! journal file. A request is routed twice, both times by a pure hash of
//! its session id:
//!
//! 1. **arm** — `ArmTable::arm_of` picks the policy arm (hash-stable
//!    percentage assignment, salted so it is independent of sharding),
//! 2. **shard** — [`vtm_core::routing::session_shard`] picks the gateway
//!    within the arm.
//!
//! Per-session state therefore lives in exactly one gateway's service, no
//! cross-shard coordination exists on the quote path, and a 1-shard/1-arm
//! fabric is *bit-identical* to a bare gateway (pinned by the determinism
//! tests).
//!
//! # Hot swap
//!
//! [`Fabric::promote`] replaces one arm's gateways with fresh ones built
//! from a new policy snapshot. The swap is an `Arc` pointer swap per
//! shard slot: submissions that already hold the old gateway resolve
//! against it (its pipeline keeps running until the fabric drains it at
//! shutdown), submissions after the swap see the new policy. No ticket is
//! dropped or misrouted — pinned by the swap-under-load test.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use vtm_core::routing::session_shard;
use vtm_gateway::{Gateway, GatewayConfig, GatewayError};
use vtm_journal::{combine_shard_digests, shard_journal_path, tagged_journal_path, JournalOptions};
use vtm_rl::snapshot::PolicySnapshot;
use vtm_serve::{PricingService, Quote, QuoteRequest, ServeError, ServiceConfig, SharedPolicy};

use crate::arms::{ArmSpec, ArmSpecError, ArmTable};
use crate::telemetry::{fold_gateway_rollups, ArmTelemetry, FabricSnapshot, ShardTelemetry};

/// Typed failure modes of the fabric request and control paths.
#[derive(Debug)]
pub enum FabricError {
    /// The arm specification was rejected (empty, bad split, bad names).
    Arms(ArmSpecError),
    /// A gateway-path failure (admission, shedding, execution, journal).
    Gateway(GatewayError),
    /// Building a per-shard service from the policy failed.
    Serve(ServeError),
    /// The named arm does not exist.
    UnknownArm(String),
    /// The fabric has been shut down (or is shutting down).
    ShutDown,
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::Arms(err) => write!(f, "arm specification: {err}"),
            FabricError::Gateway(err) => write!(f, "gateway: {err}"),
            FabricError::Serve(err) => write!(f, "service construction: {err}"),
            FabricError::UnknownArm(name) => write!(f, "unknown arm {name:?}"),
            FabricError::ShutDown => write!(f, "fabric has been shut down"),
        }
    }
}

impl std::error::Error for FabricError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FabricError::Arms(err) => Some(err),
            FabricError::Gateway(err) => Some(err),
            FabricError::Serve(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ArmSpecError> for FabricError {
    fn from(err: ArmSpecError) -> Self {
        FabricError::Arms(err)
    }
}

impl From<GatewayError> for FabricError {
    fn from(err: GatewayError) -> Self {
        FabricError::Gateway(err)
    }
}

impl From<ServeError> for FabricError {
    fn from(err: ServeError) -> Self {
        FabricError::Serve(err)
    }
}

/// Construction parameters of a [`Fabric`].
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Independent gateway shards per arm (clamped ≥ 1).
    pub shards: usize,
    /// The policy arms and their session split. Defaults to one arm
    /// `"default"` owning 100% — a plain sharded fabric with no experiment.
    pub arms: Vec<ArmSpec>,
    /// Template gateway configuration, cloned per shard (the fabric
    /// overrides [`GatewayConfig::shard`] and, when `journal` is set, the
    /// per-shard journal path; a journal set *here* is ignored).
    pub gateway: GatewayConfig,
    /// Template service configuration for every per-shard service.
    pub service: ServiceConfig,
    /// Fabric-wide journaling: shard `k` of arm `a` at generation `g`
    /// journals to `tagged(base, "<a>-g<g>")` + `".shard<k>"` (see
    /// [`vtm_journal::shard_journal_path`]), with this option's flush and
    /// snapshot cadence.
    pub journal: Option<JournalOptions>,
}

impl FabricConfig {
    /// A `shards`-wide single-arm fabric with default gateway settings.
    pub fn new(shards: usize, service: ServiceConfig) -> Self {
        Self {
            shards: shards.max(1),
            arms: vec![ArmSpec::new("default", 100)],
            gateway: GatewayConfig::default(),
            service,
            journal: None,
        }
    }

    /// Overrides the arm split.
    pub fn with_arms(mut self, arms: Vec<ArmSpec>) -> Self {
        self.arms = arms;
        self
    }

    /// Overrides the per-shard gateway template.
    pub fn with_gateway(mut self, gateway: GatewayConfig) -> Self {
        self.gateway = gateway;
        self
    }

    /// Enables per-shard journaling under the given base path/cadence.
    pub fn with_journal(mut self, journal: JournalOptions) -> Self {
        self.journal = Some(journal);
        self
    }
}

/// One arm's runtime state: the swappable gateway slots plus the state
/// that survives promotions.
struct ArmState {
    spec: ArmSpec,
    /// The live gateway per shard. `None` only once the fabric has been
    /// shut down. Swapped wholesale by `promote`.
    slots: Vec<RwLock<Option<Arc<Gateway>>>>,
    /// Gateways replaced by promotions: kept alive (their in-flight
    /// tickets must resolve) until the fabric drains them at shutdown.
    retired: Mutex<Vec<(u64, Arc<Gateway>)>>,
    /// Serializes promotions of this arm (and fences them against
    /// shutdown).
    promote: Mutex<()>,
    /// How many promotions have completed (generation of the live slots).
    generation: AtomicU64,
    /// The arm's current policy, for post-swap equivalence checks.
    policy: Mutex<SharedPolicy>,
    telemetry: Arc<ArmTelemetry>,
}

/// A completion handle for one fabric submission: the underlying gateway
/// ticket plus the per-arm telemetry the resolution is recorded into.
#[derive(Debug)]
pub struct FabricTicket {
    ticket: vtm_gateway::QuoteTicket,
    telemetry: Arc<ArmTelemetry>,
    submitted: Instant,
}

impl FabricTicket {
    /// Blocks until the quote (or a typed error) is available, recording
    /// the outcome and client-observed latency into the arm's telemetry.
    ///
    /// # Errors
    ///
    /// The underlying [`Gateway`] error, unchanged.
    pub fn wait(self) -> Result<Quote, GatewayError> {
        let result = self.ticket.wait();
        let latency_us = self
            .submitted
            .elapsed()
            .as_micros()
            .min(u128::from(u64::MAX)) as u64;
        match &result {
            Ok(quote) => self
                .telemetry
                .record_quote(quote.price(), quote.degraded, latency_us),
            Err(err) => self.telemetry.record_error(err),
        }
        result
    }
}

/// A sharded, A/B-capable front for many independent pricing gateways.
/// See the module docs for the topology and the crate docs for a
/// quickstart.
pub struct Fabric {
    config: FabricConfig,
    table: ArmTable,
    arms: Vec<ArmState>,
    closed: AtomicBool,
    /// The final snapshot, populated exactly once by `shutdown`.
    final_snapshot: Mutex<Option<FabricSnapshot>>,
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("shards", &self.config.shards)
            .field("arms", &self.table.arms())
            .field("closed", &self.closed.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Fabric {
    /// Starts every shard of every arm from one policy snapshot (validated
    /// and fingerprinted once; per-shard services share the frozen
    /// weights).
    ///
    /// # Errors
    ///
    /// [`FabricError::Arms`] for an invalid arm split, [`FabricError::Serve`]
    /// for a policy/service geometry mismatch, [`FabricError::Gateway`] when
    /// a gateway (typically its journal file) fails to start.
    pub fn start(snapshot: &PolicySnapshot, config: FabricConfig) -> Result<Self, FabricError> {
        let policy = SharedPolicy::from_snapshot(snapshot)?;
        Self::start_shared(&policy, config)
    }

    /// [`Fabric::start`] from an already-validated [`SharedPolicy`].
    ///
    /// # Errors
    ///
    /// As [`Fabric::start`], minus snapshot validation.
    pub fn start_shared(policy: &SharedPolicy, config: FabricConfig) -> Result<Self, FabricError> {
        let table = ArmTable::new(config.arms.clone())?;
        let mut arms = Vec::with_capacity(table.len());
        for spec in table.arms() {
            let mut slots = Vec::with_capacity(config.shards.max(1));
            for shard in 0..config.shards.max(1) {
                let gateway = start_gateway(&config, policy, &spec.name, 0, shard)?;
                slots.push(RwLock::new(Some(Arc::new(gateway))));
            }
            arms.push(ArmState {
                spec: spec.clone(),
                slots,
                retired: Mutex::new(Vec::new()),
                promote: Mutex::new(()),
                generation: AtomicU64::new(0),
                policy: Mutex::new(policy.clone()),
                telemetry: Arc::new(ArmTelemetry::default()),
            });
        }
        Ok(Self {
            config,
            table,
            arms,
            closed: AtomicBool::new(false),
            final_snapshot: Mutex::new(None),
        })
    }

    /// Shards per arm.
    pub fn shards(&self) -> usize {
        self.config.shards.max(1)
    }

    /// The validated arm split, in declaration order.
    pub fn arms(&self) -> &[ArmSpec] {
        self.table.arms()
    }

    /// Which arm serves `session` — pure, sticky, promotion-invariant.
    pub fn arm_of(&self, session: u64) -> &str {
        &self.table.arms()[self.table.arm_of(session)].name
    }

    /// Which shard (within its arm) serves `session` — pure in
    /// `(session, shard count)`.
    pub fn shard_of(&self, session: u64) -> usize {
        session_shard(session, self.shards())
    }

    /// Submits one quote request to its session's arm and shard; returns
    /// immediately with a completion ticket.
    ///
    /// # Errors
    ///
    /// [`FabricError::ShutDown`] after [`Fabric::shutdown`], or the
    /// routed gateway's typed admission error (backpressure, shedding,
    /// malformed feature block) — submission-time errors are recorded in
    /// the arm's telemetry either way.
    pub fn submit(&self, request: QuoteRequest) -> Result<FabricTicket, FabricError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(FabricError::ShutDown);
        }
        let arm = &self.arms[self.table.arm_of(request.session)];
        let shard = self.shard_of(request.session);
        let gateway = match &*arm.slots[shard].read().expect("slot lock poisoned") {
            Some(gateway) => Arc::clone(gateway),
            None => return Err(FabricError::ShutDown),
        };
        let submitted = Instant::now();
        match gateway.submit(request) {
            Ok(ticket) => Ok(FabricTicket {
                ticket,
                telemetry: Arc::clone(&arm.telemetry),
                submitted,
            }),
            Err(err) => {
                arm.telemetry.record_error(&err);
                Err(FabricError::Gateway(err))
            }
        }
    }

    /// Submits and waits: the one-call quote path.
    ///
    /// # Errors
    ///
    /// As [`Fabric::submit`], plus any executor-side failure.
    pub fn quote(&self, request: QuoteRequest) -> Result<Quote, FabricError> {
        self.submit(request)?.wait().map_err(FabricError::Gateway)
    }

    /// Atomically hot-swaps one arm onto a new policy snapshot.
    ///
    /// All replacement gateways (one per shard, with fresh session state
    /// and, when journaling, a new per-generation journal file) are built
    /// *before* any slot is touched, so a failed promotion changes
    /// nothing. Each shard slot is then swapped by pointer: in-flight
    /// tickets keep resolving against the gateway they were admitted to
    /// (it stays alive, retired, until fabric shutdown), and every
    /// submission routed after `promote` returns sees the new policy.
    /// Promotions of the same arm serialize; the session→arm assignment
    /// never changes.
    ///
    /// # Errors
    ///
    /// [`FabricError::UnknownArm`], [`FabricError::ShutDown`], or the
    /// construction errors of [`Fabric::start`]. On error the arm keeps
    /// serving its previous policy on every shard.
    pub fn promote(&self, arm: &str, snapshot: &PolicySnapshot) -> Result<(), FabricError> {
        let policy = SharedPolicy::from_snapshot(snapshot)?;
        self.promote_shared(arm, &policy)
    }

    /// [`Fabric::promote`] from an already-validated [`SharedPolicy`].
    ///
    /// # Errors
    ///
    /// As [`Fabric::promote`], minus snapshot validation.
    pub fn promote_shared(&self, arm: &str, policy: &SharedPolicy) -> Result<(), FabricError> {
        let index = self
            .table
            .index_of(arm)
            .ok_or_else(|| FabricError::UnknownArm(arm.to_string()))?;
        let state = &self.arms[index];
        let _guard = state.promote.lock().expect("promote lock poisoned");
        if self.closed.load(Ordering::Acquire) {
            return Err(FabricError::ShutDown);
        }
        let generation = state.generation.load(Ordering::Relaxed) + 1;
        let fresh: Vec<Arc<Gateway>> = (0..self.shards())
            .map(|shard| start_gateway(&self.config, policy, arm, generation, shard).map(Arc::new))
            .collect::<Result<_, _>>()?;
        let old_generation = state.generation.load(Ordering::Relaxed);
        for (slot, gateway) in state.slots.iter().zip(fresh) {
            let old = slot.write().expect("slot lock poisoned").replace(gateway);
            if let Some(old) = old {
                state
                    .retired
                    .lock()
                    .expect("retired lock poisoned")
                    .push((old_generation, old));
            }
        }
        state.generation.store(generation, Ordering::Relaxed);
        *state.policy.lock().expect("policy lock poisoned") = policy.clone();
        state.telemetry.record_promotion();
        Ok(())
    }

    /// The policy fingerprint each arm currently serves (see
    /// [`SharedPolicy::fingerprint`]), in arm declaration order.
    pub fn arm_fingerprints(&self) -> Vec<(String, u64)> {
        self.arms
            .iter()
            .map(|arm| {
                let policy = arm.policy.lock().expect("policy lock poisoned");
                (arm.spec.name.clone(), policy.fingerprint())
            })
            .collect()
    }

    /// One arm's per-shard service-state digests
    /// ([`PricingService::state_digest`]), shard order. `None` for an
    /// unknown arm or after shutdown.
    pub fn shard_digests(&self, arm: &str) -> Option<Vec<u64>> {
        let state = &self.arms[self.table.index_of(arm)?];
        let mut digests = Vec::with_capacity(state.slots.len());
        for slot in &state.slots {
            let guard = slot.read().expect("slot lock poisoned");
            digests.push(guard.as_ref()?.service().state_digest());
        }
        Some(digests)
    }

    /// One arm's merged fabric-state digest:
    /// [`combine_shard_digests`] over [`Fabric::shard_digests`].
    pub fn state_digest(&self, arm: &str) -> Option<u64> {
        Some(combine_shard_digests(&self.shard_digests(arm)?))
    }

    /// The journal file each live gateway appends to, as
    /// `(arm, shard, path)` — empty when journaling is off.
    pub fn journal_paths(&self) -> Vec<(String, usize, PathBuf)> {
        let Some(journal) = &self.config.journal else {
            return Vec::new();
        };
        let mut paths = Vec::new();
        for arm in &self.arms {
            let generation = arm.generation.load(Ordering::Relaxed);
            let base = arm_journal_base(journal, &arm.spec.name, generation);
            for shard in 0..arm.slots.len() {
                paths.push((
                    arm.spec.name.clone(),
                    shard,
                    shard_journal_path(&base, shard),
                ));
            }
        }
        paths
    }

    /// A point-in-time fabric snapshot: per-arm counters plus every live
    /// gateway's telemetry (retired generations are folded in at
    /// [`Fabric::shutdown`]).
    pub fn telemetry(&self) -> FabricSnapshot {
        let mut gateways = Vec::new();
        for arm in &self.arms {
            let generation = arm.generation.load(Ordering::Relaxed);
            for (shard, slot) in arm.slots.iter().enumerate() {
                if let Some(gateway) = &*slot.read().expect("slot lock poisoned") {
                    gateways.push(ShardTelemetry {
                        arm: arm.spec.name.clone(),
                        shard,
                        generation,
                        telemetry: gateway.telemetry(),
                    });
                }
            }
        }
        let mut arms: Vec<_> = self
            .arms
            .iter()
            .map(|arm| arm.telemetry.snapshot(&arm.spec.name, arm.spec.percent))
            .collect();
        fold_gateway_rollups(&mut arms, &gateways);
        FabricSnapshot {
            shards: self.shards(),
            arms,
            gateways,
        }
    }

    /// Drains the whole fabric: stops admitting, then shuts every gateway
    /// of every arm — live slots and retired generations — down
    /// *concurrently* (one drain thread per gateway, so shard drains
    /// overlap exactly like shard serving does). Every in-flight ticket
    /// resolves with its quote or a typed error; no ticket resolves twice
    /// or hangs (pinned by the shutdown-under-load test).
    ///
    /// Idempotent: the first call produces the final [`FabricSnapshot`]
    /// (retired generations included); later calls return the same
    /// snapshot.
    pub fn shutdown(&self) -> FabricSnapshot {
        self.closed.store(true, Ordering::Release);
        {
            let mut done = self.final_snapshot.lock().expect("snapshot lock poisoned");
            if let Some(snapshot) = &*done {
                return snapshot.clone();
            }
            // Fence against in-flight promotions, then fall through with
            // the lock *held* so a concurrent shutdown waits for us.
            for arm in &self.arms {
                drop(arm.promote.lock().expect("promote lock poisoned"));
            }
            let mut drained: Vec<ShardTelemetry> = Vec::new();
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for arm in &self.arms {
                    let generation = arm.generation.load(Ordering::Relaxed);
                    for (shard, slot) in arm.slots.iter().enumerate() {
                        let taken = slot.write().expect("slot lock poisoned").take();
                        if let Some(gateway) = taken {
                            let name = arm.spec.name.clone();
                            handles.push(scope.spawn(move || ShardTelemetry {
                                arm: name,
                                shard,
                                generation,
                                telemetry: drain(gateway),
                            }));
                        }
                    }
                    let retired =
                        std::mem::take(&mut *arm.retired.lock().expect("retired lock poisoned"));
                    for (generation, gateway) in retired {
                        let name = arm.spec.name.clone();
                        let shard = gateway.telemetry().shard;
                        handles.push(scope.spawn(move || ShardTelemetry {
                            arm: name,
                            shard,
                            generation,
                            telemetry: drain(gateway),
                        }));
                    }
                }
                for handle in handles {
                    drained.push(handle.join().expect("drain thread panicked"));
                }
            });
            let order: Vec<&str> = self.arms.iter().map(|a| a.spec.name.as_str()).collect();
            drained.sort_by_key(|t| {
                (
                    order.iter().position(|n| *n == t.arm).unwrap_or(usize::MAX),
                    t.generation,
                    t.shard,
                )
            });
            let mut arms: Vec<_> = self
                .arms
                .iter()
                .map(|arm| arm.telemetry.snapshot(&arm.spec.name, arm.spec.percent))
                .collect();
            fold_gateway_rollups(&mut arms, &drained);
            let snapshot = FabricSnapshot {
                shards: self.shards(),
                arms,
                gateways: drained,
            };
            *done = Some(snapshot.clone());
            snapshot
        }
    }
}

impl Drop for Fabric {
    /// Last-resort drain so dropping a fabric never leaks gateway threads
    /// (explicit [`Fabric::shutdown`] is preferred — it returns the final
    /// snapshot).
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Blocks until `gateway` is uniquely owned (submitters hold clones only
/// for the duration of a `submit` call), then consumes it through the
/// gateway's own graceful drain.
fn drain(mut gateway: Arc<Gateway>) -> vtm_gateway::TelemetrySnapshot {
    loop {
        match Arc::try_unwrap(gateway) {
            Ok(inner) => return inner.shutdown(),
            Err(shared) => {
                gateway = shared;
                std::thread::yield_now();
            }
        }
    }
}

/// The journal base path of one arm generation:
/// `tagged(base, "<arm>-g<generation>")`.
fn arm_journal_base(journal: &JournalOptions, arm: &str, generation: u64) -> PathBuf {
    tagged_journal_path(&journal.path, &format!("{arm}-g{generation}"))
}

/// Builds one shard's service (cheap, from the shared policy) and starts
/// its gateway, with the shard id and the per-shard journal file plumbed
/// into the cloned template config.
fn start_gateway(
    config: &FabricConfig,
    policy: &SharedPolicy,
    arm: &str,
    generation: u64,
    shard: usize,
) -> Result<Gateway, FabricError> {
    let service = PricingService::from_shared(policy, config.service)?;
    let mut gateway_config = config.gateway.clone().with_shard(shard);
    gateway_config.journal = config.journal.as_ref().map(|journal| JournalOptions {
        path: shard_journal_path(&arm_journal_base(journal, arm, generation), shard),
        ..*journal
    });
    Gateway::try_start(Arc::new(service), gateway_config).map_err(FabricError::Gateway)
}
