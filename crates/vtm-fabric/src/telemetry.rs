//! Fabric-level telemetry: per-arm counters and the aggregated snapshot.
//!
//! Each gateway shard already keeps its own [`TelemetrySnapshot`]; what the
//! fabric adds is the *arm* axis — counters that survive hot-swaps (a
//! promotion replaces an arm's gateways, not its history) and a
//! revenue-proxy sum so an A/B experiment can read off which policy earns
//! more. Latencies are recorded client-side at ticket resolution into the
//! same log₂-µs histogram the gateway uses, so per-arm percentiles follow
//! the exact bucket convention of the per-shard ones.

use std::sync::atomic::{AtomicU64, Ordering};

use vtm_gateway::{GatewayError, StageSnapshot, TelemetrySnapshot};
use vtm_obs::{HistogramSnapshot, LogHistogram, MetricsRegistry};

/// Lock-free per-arm counters (one per arm, shared by every ticket).
#[derive(Debug, Default)]
pub(crate) struct ArmTelemetry {
    quotes: AtomicU64,
    degraded: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
    promotions: AtomicU64,
    /// Bit-packed f64 sum of quoted prices (CAS loop; see `add_revenue`).
    revenue_bits: AtomicU64,
    latency: LogHistogram,
}

impl ArmTelemetry {
    /// Records a resolved quote: completion, degradation, revenue proxy
    /// and client-observed latency.
    pub(crate) fn record_quote(&self, price: f64, degraded: bool, latency_us: u64) {
        self.quotes.fetch_add(1, Ordering::Relaxed);
        if degraded {
            self.degraded.fetch_add(1, Ordering::Relaxed);
        }
        self.add_revenue(price);
        self.latency.record(latency_us);
    }

    /// Records a typed failure, bucketed the way an experiment reads it:
    /// load-shedding and backpressure separately from hard failures.
    pub(crate) fn record_error(&self, error: &GatewayError) {
        let counter = match error {
            GatewayError::Shed { .. } => &self.shed,
            GatewayError::Overloaded { .. } => &self.rejected,
            _ => &self.failed,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one completed promotion (hot-swap) of this arm.
    pub(crate) fn record_promotion(&self) {
        self.promotions.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds a price to the revenue-proxy sum. f64 addition via a CAS loop
    /// on the bit pattern — contention is per-arm and the loop is two
    /// instructions, so this never serializes the quote path measurably.
    fn add_revenue(&self, price: f64) {
        let mut current = self.revenue_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + price).to_bits();
            match self.revenue_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// A point-in-time copy with derived percentiles. Gateway-side fault
    /// counters and stage histograms start zeroed/absent here — they are
    /// folded in from the per-gateway snapshots by [`fold_gateway_rollups`].
    pub(crate) fn snapshot(&self, name: &str, percent: u32) -> ArmSnapshot {
        let latency = self.latency.snapshot();
        ArmSnapshot {
            name: name.to_string(),
            percent,
            quotes: self.quotes.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
            expired: 0,
            watchdog_fires: 0,
            journal_bypassed: 0,
            revenue: f64::from_bits(self.revenue_bits.load(Ordering::Relaxed)),
            latency_p50_us: latency.p50_us(),
            latency_p95_us: latency.p95_us(),
            latency_p99_us: latency.p99_us(),
            latency_mean_us: latency.mean_us(),
            latency,
            stages: None,
        }
    }
}

/// Folds per-gateway fault counters and stage histograms into the arm
/// snapshots they belong to. The fault counters (`expired`,
/// `watchdog_fires`, `journal_bypassed`) live in the *gateway* telemetry —
/// the arm axis would otherwise drop them at rollup. `gateways` is whatever
/// set the caller assembled: live slots for [`crate::Fabric::telemetry`],
/// live plus retired generations at [`crate::Fabric::shutdown`].
pub(crate) fn fold_gateway_rollups(arms: &mut [ArmSnapshot], gateways: &[ShardTelemetry]) {
    for arm in arms.iter_mut() {
        for gateway in gateways.iter().filter(|g| g.arm == arm.name) {
            arm.expired += gateway.telemetry.expired;
            arm.watchdog_fires += gateway.telemetry.watchdog_fires;
            arm.journal_bypassed += gateway.telemetry.journal_bypassed;
            if let Some(stages) = &gateway.telemetry.stages {
                arm.stages
                    .get_or_insert_with(StageSnapshot::default)
                    .merge(stages);
            }
        }
    }
}

/// A point-in-time copy of one arm's fabric-level counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ArmSnapshot {
    /// The arm's name.
    pub name: String,
    /// The arm's configured session share, in percent.
    pub percent: u32,
    /// Quotes resolved for this arm (across promotions).
    pub quotes: u64,
    /// Resolved quotes answered from the degraded last-quote cache.
    pub degraded: u64,
    /// Submissions rejected by load shedding.
    pub shed: u64,
    /// Submissions rejected by admission backpressure.
    pub rejected: u64,
    /// Tickets resolved with any other typed error.
    pub failed: u64,
    /// Completed hot-swap promotions of this arm.
    pub promotions: u64,
    /// Requests expired before batch formation, summed over the arm's
    /// gateways (live generations for a live snapshot; retired generations
    /// folded in at shutdown).
    pub expired: u64,
    /// Scheduler-watchdog activations, summed over the arm's gateways.
    pub watchdog_fires: u64,
    /// Admissions that bypassed the journal, summed over the arm's
    /// gateways.
    pub journal_bypassed: u64,
    /// Revenue proxy: the sum of quoted prices ([`vtm_serve::Quote::price`])
    /// over every resolved quote — the A/B comparison metric.
    pub revenue: f64,
    /// Median client-observed latency (bucket upper bound, µs).
    pub latency_p50_us: u64,
    /// 95th-percentile client-observed latency (bucket upper bound, µs).
    pub latency_p95_us: u64,
    /// 99th-percentile client-observed latency (bucket upper bound, µs).
    pub latency_p99_us: u64,
    /// Mean client-observed latency (exact, µs).
    pub latency_mean_us: f64,
    /// The full client-observed latency histogram the percentiles above
    /// derive from.
    pub latency: HistogramSnapshot,
    /// Per-stage latency decomposition merged across the arm's traced
    /// gateways; `None` when no gateway had tracing enabled.
    pub stages: Option<StageSnapshot>,
}

impl ArmSnapshot {
    /// Renders the arm as a JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\": \"{}\", \"percent\": {}, \"quotes\": {}, \"degraded\": {}, \
             \"shed\": {}, \"rejected\": {}, \"failed\": {}, \"promotions\": {}, \
             \"expired\": {}, \"watchdog_fires\": {}, \"journal_bypassed\": {}, \
             \"revenue\": {:.3}, \
             \"latency_us\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"mean\": {:.1}}}, \
             \"stages\": {}}}",
            self.name,
            self.percent,
            self.quotes,
            self.degraded,
            self.shed,
            self.rejected,
            self.failed,
            self.promotions,
            self.expired,
            self.watchdog_fires,
            self.journal_bypassed,
            self.revenue,
            self.latency_p50_us,
            self.latency_p95_us,
            self.latency_p99_us,
            self.latency_mean_us,
            self.stages
                .as_ref()
                .map_or_else(|| "null".to_string(), StageSnapshot::to_json),
        )
    }

    /// Registers the arm's counters, revenue gauge and latency histogram
    /// into `registry` under the `vtm_fabric_arm_*` namespace, labelled
    /// with the arm name.
    pub fn register_metrics(&self, registry: &mut MetricsRegistry) {
        let labels: [(&str, &str); 1] = [("arm", &self.name)];
        let counters: [(&str, &str, u64); 9] = [
            (
                "vtm_fabric_arm_quotes_total",
                "Quotes resolved for the arm.",
                self.quotes,
            ),
            (
                "vtm_fabric_arm_degraded_total",
                "Quotes from the degraded cache.",
                self.degraded,
            ),
            (
                "vtm_fabric_arm_shed_total",
                "Submissions shed by the health controller.",
                self.shed,
            ),
            (
                "vtm_fabric_arm_rejected_total",
                "Submissions rejected by backpressure.",
                self.rejected,
            ),
            (
                "vtm_fabric_arm_failed_total",
                "Tickets resolved with a hard error.",
                self.failed,
            ),
            (
                "vtm_fabric_arm_promotions_total",
                "Completed hot-swap promotions.",
                self.promotions,
            ),
            (
                "vtm_fabric_arm_expired_total",
                "Requests expired before batch formation.",
                self.expired,
            ),
            (
                "vtm_fabric_arm_watchdog_fires_total",
                "Scheduler-watchdog activations.",
                self.watchdog_fires,
            ),
            (
                "vtm_fabric_arm_journal_bypassed_total",
                "Admissions without a journal frame.",
                self.journal_bypassed,
            ),
        ];
        for (name, help, value) in counters {
            registry.counter(name, help, &labels, value);
        }
        registry.gauge(
            "vtm_fabric_arm_revenue",
            "Sum of quoted prices resolved for the arm.",
            &labels,
            self.revenue,
        );
        registry.histogram(
            "vtm_fabric_arm_latency_us",
            "Client-observed ticket-resolution latency (log2 us buckets).",
            &labels,
            &self.latency,
        );
        if let Some(stages) = &self.stages {
            registry.counter(
                "vtm_fabric_arm_traced_total",
                "Sampled requests folded into the arm's stage histograms.",
                &labels,
                stages.traced,
            );
            let named = [
                ("queue_wait", &stages.queue_wait),
                ("batch_form", &stages.batch_form),
                ("inference", &stages.inference),
                ("resolve", &stages.resolve),
                ("journal_append", &stages.journal_append),
            ];
            for (stage, histogram) in named {
                let stage_labels: [(&str, &str); 2] = [("arm", &self.name), ("stage", stage)];
                registry.histogram(
                    "vtm_fabric_arm_stage_us",
                    "Per-stage latency decomposition aggregated over the arm (log2 us buckets).",
                    &stage_labels,
                    histogram,
                );
            }
        }
    }
}

/// One gateway's telemetry, tagged with its fabric coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardTelemetry {
    /// The arm the gateway belongs to.
    pub arm: String,
    /// The gateway's shard index within the arm.
    pub shard: usize,
    /// The arm generation the gateway was started under (0 = the fabric's
    /// initial policy; each promotion of the arm increments it).
    pub generation: u64,
    /// The gateway's own counters, histograms and percentiles.
    pub telemetry: TelemetrySnapshot,
}

/// A point-in-time copy of the whole fabric's telemetry: the per-arm axis
/// plus every live (or, at shutdown, every drained) gateway's snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricSnapshot {
    /// Shards per arm.
    pub shards: usize,
    /// Per-arm fabric-level counters, in arm declaration order.
    pub arms: Vec<ArmSnapshot>,
    /// Per-gateway snapshots, sorted by (arm declaration order,
    /// generation, shard).
    pub gateways: Vec<ShardTelemetry>,
}

impl FabricSnapshot {
    /// Renders the snapshot as a JSON object (no trailing newline), in the
    /// same hand-rolled dependency-free style as the `results/` reports.
    pub fn to_json(&self) -> String {
        let arms: Vec<String> = self.arms.iter().map(ArmSnapshot::to_json).collect();
        let gateways: Vec<String> = self
            .gateways
            .iter()
            .map(|g| {
                format!(
                    "{{\"arm\": \"{}\", \"shard\": {}, \"generation\": {}, \"telemetry\": {}}}",
                    g.arm,
                    g.shard,
                    g.generation,
                    g.telemetry.to_json()
                )
            })
            .collect();
        format!(
            "{{\"shards\": {}, \"arms\": [{}], \"gateways\": [{}]}}",
            self.shards,
            arms.join(", "),
            gateways.join(", ")
        )
    }

    /// Registers the whole fabric into `registry`: per-arm rollups under
    /// `vtm_fabric_arm_*` plus every gateway's own `vtm_gateway_*` families
    /// labelled by fabric coordinates (arm, shard, generation).
    pub fn register_metrics(&self, registry: &mut MetricsRegistry) {
        registry.gauge(
            "vtm_fabric_shards",
            "Configured gateway shards per arm.",
            &[],
            self.shards as f64,
        );
        for arm in &self.arms {
            arm.register_metrics(registry);
        }
        for gateway in &self.gateways {
            let shard = gateway.shard.to_string();
            let generation = gateway.generation.to_string();
            let labels: [(&str, &str); 3] = [
                ("arm", &gateway.arm),
                ("shard", &shard),
                ("generation", &generation),
            ];
            gateway.telemetry.register_metrics(registry, &labels);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_counters_accumulate_and_summarize() {
        let telemetry = ArmTelemetry::default();
        telemetry.record_quote(10.0, false, 100);
        telemetry.record_quote(20.0, true, 200);
        telemetry.record_error(&GatewayError::Shed { retry_after_us: 50 });
        telemetry.record_error(&GatewayError::Overloaded { queue_capacity: 8 });
        telemetry.record_error(&GatewayError::ShuttingDown);
        telemetry.record_promotion();
        let snap = telemetry.snapshot("a", 90);
        assert_eq!(snap.quotes, 2);
        assert_eq!(snap.degraded, 1);
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.failed, 1);
        assert_eq!(snap.promotions, 1);
        assert!((snap.revenue - 30.0).abs() < 1e-12);
        assert_eq!(snap.latency_mean_us, 150.0);
        assert!(snap.latency_p50_us >= 100);
        assert!(snap.latency_p99_us >= snap.latency_p50_us);
        let json = snap.to_json();
        assert!(json.contains("\"revenue\": 30.000"));
        assert!(json.contains("\"percent\": 90"));
    }

    /// The revenue CAS loop survives concurrent adders without losing
    /// updates (the whole point of packing an f64 into an atomic).
    #[test]
    fn revenue_sum_is_exact_under_contention() {
        let telemetry = ArmTelemetry::default();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        telemetry.record_quote(0.25, false, 1);
                    }
                });
            }
        });
        let snap = telemetry.snapshot("a", 100);
        assert_eq!(snap.quotes, 4000);
        // 0.25 sums exactly in binary floating point.
        assert_eq!(snap.revenue, 1000.0);
    }

    /// Gateway-side fault counters and stage histograms roll up into the
    /// owning arm (and only that arm), across generations.
    #[test]
    fn gateway_faults_and_stages_fold_into_their_arm() {
        let mut arms = vec![
            ArmTelemetry::default().snapshot("a", 90),
            ArmTelemetry::default().snapshot("b", 10),
        ];
        let mut shard_a = vtm_gateway::Telemetry::new().snapshot();
        shard_a.expired = 3;
        shard_a.watchdog_fires = 1;
        shard_a.journal_bypassed = 7;
        let mut stages = StageSnapshot {
            traced: 5,
            ..StageSnapshot::default()
        };
        stages.queue_wait.count = 5;
        shard_a.stages = Some(stages);
        let mut retired_a = vtm_gateway::Telemetry::new().snapshot();
        retired_a.expired = 2;
        retired_a.journal_bypassed = 1;
        let mut shard_b = vtm_gateway::Telemetry::new().snapshot();
        shard_b.expired = 11;
        let gateways = vec![
            ShardTelemetry {
                arm: "a".into(),
                shard: 0,
                generation: 1,
                telemetry: shard_a,
            },
            ShardTelemetry {
                arm: "a".into(),
                shard: 0,
                generation: 0,
                telemetry: retired_a,
            },
            ShardTelemetry {
                arm: "b".into(),
                shard: 0,
                generation: 0,
                telemetry: shard_b,
            },
        ];
        fold_gateway_rollups(&mut arms, &gateways);
        assert_eq!(arms[0].expired, 5);
        assert_eq!(arms[0].watchdog_fires, 1);
        assert_eq!(arms[0].journal_bypassed, 8);
        let stages = arms[0].stages.as_ref().expect("arm a was traced");
        assert_eq!(stages.traced, 5);
        assert_eq!(stages.queue_wait.count, 5);
        assert_eq!(arms[1].expired, 11);
        assert!(arms[1].stages.is_none());
        let json = arms[0].to_json();
        assert!(json.contains("\"expired\": 5"), "{json}");
        assert!(json.contains("\"watchdog_fires\": 1"), "{json}");
        assert!(json.contains("\"journal_bypassed\": 8"), "{json}");
        assert!(json.contains("\"stages\": {"), "{json}");
        assert!(arms[1].to_json().contains("\"stages\": null"));
    }

    /// The fabric-level registry carries arm rollups and per-gateway
    /// families with fabric coordinates as labels.
    #[test]
    fn fabric_metrics_registry_has_arm_and_gateway_families() {
        let arm = ArmTelemetry::default();
        arm.record_quote(12.0, false, 64);
        let snapshot = FabricSnapshot {
            shards: 2,
            arms: vec![arm.snapshot("steady", 100)],
            gateways: vec![ShardTelemetry {
                arm: "steady".into(),
                shard: 1,
                generation: 3,
                telemetry: vtm_gateway::Telemetry::new().snapshot(),
            }],
        };
        let mut registry = MetricsRegistry::new();
        snapshot.register_metrics(&mut registry);
        let text = registry.render_text();
        assert!(
            text.contains("vtm_fabric_arm_quotes_total{arm=\"steady\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("vtm_fabric_arm_latency_us_count{arm=\"steady\"} 1"),
            "{text}"
        );
        assert!(
            text.contains(
                "vtm_gateway_submitted_total{arm=\"steady\",shard=\"1\",generation=\"3\"} 0"
            ),
            "{text}"
        );
    }
}
