//! Fabric-level telemetry: per-arm counters and the aggregated snapshot.
//!
//! Each gateway shard already keeps its own [`TelemetrySnapshot`]; what the
//! fabric adds is the *arm* axis — counters that survive hot-swaps (a
//! promotion replaces an arm's gateways, not its history) and a
//! revenue-proxy sum so an A/B experiment can read off which policy earns
//! more. Latencies are recorded client-side at ticket resolution into the
//! same log₂-µs histogram the gateway uses, so per-arm percentiles follow
//! the exact bucket convention of the per-shard ones.

use std::sync::atomic::{AtomicU64, Ordering};

use vtm_gateway::{
    latency_bucket, percentile_from_buckets, GatewayError, TelemetrySnapshot, LATENCY_BUCKETS,
};

/// Lock-free per-arm counters (one per arm, shared by every ticket).
#[derive(Debug)]
pub(crate) struct ArmTelemetry {
    quotes: AtomicU64,
    degraded: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
    promotions: AtomicU64,
    /// Bit-packed f64 sum of quoted prices (CAS loop; see `add_revenue`).
    revenue_bits: AtomicU64,
    latency_us: [AtomicU64; LATENCY_BUCKETS],
    latency_sum_us: AtomicU64,
}

impl Default for ArmTelemetry {
    fn default() -> Self {
        Self {
            quotes: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            revenue_bits: AtomicU64::new(0),
            latency_us: std::array::from_fn(|_| AtomicU64::new(0)),
            latency_sum_us: AtomicU64::new(0),
        }
    }
}

impl ArmTelemetry {
    /// Records a resolved quote: completion, degradation, revenue proxy
    /// and client-observed latency.
    pub(crate) fn record_quote(&self, price: f64, degraded: bool, latency_us: u64) {
        self.quotes.fetch_add(1, Ordering::Relaxed);
        if degraded {
            self.degraded.fetch_add(1, Ordering::Relaxed);
        }
        self.add_revenue(price);
        self.latency_us[latency_bucket(latency_us)].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(latency_us, Ordering::Relaxed);
    }

    /// Records a typed failure, bucketed the way an experiment reads it:
    /// load-shedding and backpressure separately from hard failures.
    pub(crate) fn record_error(&self, error: &GatewayError) {
        let counter = match error {
            GatewayError::Shed { .. } => &self.shed,
            GatewayError::Overloaded { .. } => &self.rejected,
            _ => &self.failed,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one completed promotion (hot-swap) of this arm.
    pub(crate) fn record_promotion(&self) {
        self.promotions.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds a price to the revenue-proxy sum. f64 addition via a CAS loop
    /// on the bit pattern — contention is per-arm and the loop is two
    /// instructions, so this never serializes the quote path measurably.
    fn add_revenue(&self, price: f64) {
        let mut current = self.revenue_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + price).to_bits();
            match self.revenue_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// A point-in-time copy with derived percentiles.
    pub(crate) fn snapshot(&self, name: &str, percent: u32) -> ArmSnapshot {
        let buckets: Vec<u64> = self
            .latency_us
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let quotes = self.quotes.load(Ordering::Relaxed);
        ArmSnapshot {
            name: name.to_string(),
            percent,
            quotes,
            degraded: self.degraded.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
            revenue: f64::from_bits(self.revenue_bits.load(Ordering::Relaxed)),
            latency_p50_us: percentile_from_buckets(&buckets, 0.50),
            latency_p95_us: percentile_from_buckets(&buckets, 0.95),
            latency_p99_us: percentile_from_buckets(&buckets, 0.99),
            latency_mean_us: if quotes == 0 {
                0.0
            } else {
                self.latency_sum_us.load(Ordering::Relaxed) as f64 / quotes as f64
            },
        }
    }
}

/// A point-in-time copy of one arm's fabric-level counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ArmSnapshot {
    /// The arm's name.
    pub name: String,
    /// The arm's configured session share, in percent.
    pub percent: u32,
    /// Quotes resolved for this arm (across promotions).
    pub quotes: u64,
    /// Resolved quotes answered from the degraded last-quote cache.
    pub degraded: u64,
    /// Submissions rejected by load shedding.
    pub shed: u64,
    /// Submissions rejected by admission backpressure.
    pub rejected: u64,
    /// Tickets resolved with any other typed error.
    pub failed: u64,
    /// Completed hot-swap promotions of this arm.
    pub promotions: u64,
    /// Revenue proxy: the sum of quoted prices ([`vtm_serve::Quote::price`])
    /// over every resolved quote — the A/B comparison metric.
    pub revenue: f64,
    /// Median client-observed latency (bucket upper bound, µs).
    pub latency_p50_us: u64,
    /// 95th-percentile client-observed latency (bucket upper bound, µs).
    pub latency_p95_us: u64,
    /// 99th-percentile client-observed latency (bucket upper bound, µs).
    pub latency_p99_us: u64,
    /// Mean client-observed latency (exact, µs).
    pub latency_mean_us: f64,
}

impl ArmSnapshot {
    /// Renders the arm as a JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\": \"{}\", \"percent\": {}, \"quotes\": {}, \"degraded\": {}, \
             \"shed\": {}, \"rejected\": {}, \"failed\": {}, \"promotions\": {}, \
             \"revenue\": {:.3}, \
             \"latency_us\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"mean\": {:.1}}}}}",
            self.name,
            self.percent,
            self.quotes,
            self.degraded,
            self.shed,
            self.rejected,
            self.failed,
            self.promotions,
            self.revenue,
            self.latency_p50_us,
            self.latency_p95_us,
            self.latency_p99_us,
            self.latency_mean_us,
        )
    }
}

/// One gateway's telemetry, tagged with its fabric coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardTelemetry {
    /// The arm the gateway belongs to.
    pub arm: String,
    /// The gateway's shard index within the arm.
    pub shard: usize,
    /// The arm generation the gateway was started under (0 = the fabric's
    /// initial policy; each promotion of the arm increments it).
    pub generation: u64,
    /// The gateway's own counters, histograms and percentiles.
    pub telemetry: TelemetrySnapshot,
}

/// A point-in-time copy of the whole fabric's telemetry: the per-arm axis
/// plus every live (or, at shutdown, every drained) gateway's snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricSnapshot {
    /// Shards per arm.
    pub shards: usize,
    /// Per-arm fabric-level counters, in arm declaration order.
    pub arms: Vec<ArmSnapshot>,
    /// Per-gateway snapshots, sorted by (arm declaration order,
    /// generation, shard).
    pub gateways: Vec<ShardTelemetry>,
}

impl FabricSnapshot {
    /// Renders the snapshot as a JSON object (no trailing newline), in the
    /// same hand-rolled dependency-free style as the `results/` reports.
    pub fn to_json(&self) -> String {
        let arms: Vec<String> = self.arms.iter().map(ArmSnapshot::to_json).collect();
        let gateways: Vec<String> = self
            .gateways
            .iter()
            .map(|g| {
                format!(
                    "{{\"arm\": \"{}\", \"shard\": {}, \"generation\": {}, \"telemetry\": {}}}",
                    g.arm,
                    g.shard,
                    g.generation,
                    g.telemetry.to_json()
                )
            })
            .collect();
        format!(
            "{{\"shards\": {}, \"arms\": [{}], \"gateways\": [{}]}}",
            self.shards,
            arms.join(", "),
            gateways.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_counters_accumulate_and_summarize() {
        let telemetry = ArmTelemetry::default();
        telemetry.record_quote(10.0, false, 100);
        telemetry.record_quote(20.0, true, 200);
        telemetry.record_error(&GatewayError::Shed { retry_after_us: 50 });
        telemetry.record_error(&GatewayError::Overloaded { queue_capacity: 8 });
        telemetry.record_error(&GatewayError::ShuttingDown);
        telemetry.record_promotion();
        let snap = telemetry.snapshot("a", 90);
        assert_eq!(snap.quotes, 2);
        assert_eq!(snap.degraded, 1);
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.failed, 1);
        assert_eq!(snap.promotions, 1);
        assert!((snap.revenue - 30.0).abs() < 1e-12);
        assert_eq!(snap.latency_mean_us, 150.0);
        assert!(snap.latency_p50_us >= 100);
        assert!(snap.latency_p99_us >= snap.latency_p50_us);
        let json = snap.to_json();
        assert!(json.contains("\"revenue\": 30.000"));
        assert!(json.contains("\"percent\": 90"));
    }

    /// The revenue CAS loop survives concurrent adders without losing
    /// updates (the whole point of packing an f64 into an atomic).
    #[test]
    fn revenue_sum_is_exact_under_contention() {
        let telemetry = ArmTelemetry::default();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        telemetry.record_quote(0.25, false, 1);
                    }
                });
            }
        });
        let snap = telemetry.snapshot("a", 100);
        assert_eq!(snap.quotes, 4000);
        // 0.25 sums exactly in binary floating point.
        assert_eq!(snap.revenue, 1000.0);
    }
}
