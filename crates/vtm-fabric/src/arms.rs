//! Named policy arms with hash-stable percentage assignment.
//!
//! An A/B experiment splits sessions between two or more named policy
//! arms. The assignment must be *sticky*: a session must see the same arm
//! on every request, across restarts, with no assignment table to persist.
//! The fabric therefore derives the arm from the session id alone:
//! `splitmix64(session ^ ARM_SALT) % 100` picks a percentage bucket, and
//! the arm owning that bucket (arms own contiguous bucket ranges in
//! declaration order) serves the session. The salt decorrelates arm
//! assignment from shard routing, so every arm sees an unbiased slice of
//! every shard's sessions.

use std::fmt;

use vtm_core::routing::splitmix64;

/// Salt folded into the session id before arm hashing so arm assignment is
/// statistically independent of `session_shard` routing.
const ARM_SALT: u64 = 0xA1B2_5EED_0FAB_41C5;

/// One named policy arm and its share of sessions, in percent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArmSpec {
    /// The arm's name (unique within a fabric, e.g. `"control"`).
    pub name: String,
    /// Percentage of sessions routed to this arm; a fabric's arm
    /// percentages must sum to exactly 100.
    pub percent: u32,
}

impl ArmSpec {
    /// A named arm owning `percent` percent of sessions.
    pub fn new(name: impl Into<String>, percent: u32) -> Self {
        Self {
            name: name.into(),
            percent,
        }
    }
}

/// Why an arm specification was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArmSpecError {
    /// No arms were given.
    Empty,
    /// An arm name is empty or repeated.
    BadName(String),
    /// The percentages do not sum to 100.
    BadSplit(u32),
    /// A `name=percent` token failed to parse.
    BadToken(String),
}

impl fmt::Display for ArmSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArmSpecError::Empty => write!(f, "at least one arm is required"),
            ArmSpecError::BadName(name) => {
                write!(f, "arm names must be unique and non-empty (got {name:?})")
            }
            ArmSpecError::BadSplit(sum) => {
                write!(f, "arm percentages must sum to 100 (got {sum})")
            }
            ArmSpecError::BadToken(token) => {
                write!(f, "expected name=percent, got {token:?}")
            }
        }
    }
}

impl std::error::Error for ArmSpecError {}

/// Parses a CLI-style arm list `"a=90,b=10"` into specs (declaration order
/// preserved — it determines bucket ownership).
///
/// # Errors
///
/// [`ArmSpecError::BadToken`] for malformed tokens; the split itself is
/// validated later by [`ArmTable::new`].
pub fn parse_arms(spec: &str) -> Result<Vec<ArmSpec>, ArmSpecError> {
    spec.split(',')
        .map(|token| {
            let token = token.trim();
            let (name, percent) = token
                .split_once('=')
                .ok_or_else(|| ArmSpecError::BadToken(token.to_string()))?;
            let percent: u32 = percent
                .trim()
                .parse()
                .map_err(|_| ArmSpecError::BadToken(token.to_string()))?;
            Ok(ArmSpec::new(name.trim(), percent))
        })
        .collect()
}

/// A validated arm list with the pure session→arm assignment function.
#[derive(Debug, Clone)]
pub struct ArmTable {
    arms: Vec<ArmSpec>,
    /// `cumulative[i]` = first bucket *not* owned by arm `i`; arm `i` owns
    /// buckets `cumulative[i-1]..cumulative[i]` of `0..100`.
    cumulative: Vec<u32>,
}

impl ArmTable {
    /// Validates the specs: non-empty, unique non-empty names, percentages
    /// summing to exactly 100.
    ///
    /// # Errors
    ///
    /// A typed [`ArmSpecError`] naming the violated rule.
    pub fn new(arms: Vec<ArmSpec>) -> Result<Self, ArmSpecError> {
        if arms.is_empty() {
            return Err(ArmSpecError::Empty);
        }
        for (i, arm) in arms.iter().enumerate() {
            if arm.name.is_empty() || arms[..i].iter().any(|a| a.name == arm.name) {
                return Err(ArmSpecError::BadName(arm.name.clone()));
            }
        }
        let sum: u32 = arms.iter().map(|a| a.percent).sum();
        if sum != 100 {
            return Err(ArmSpecError::BadSplit(sum));
        }
        let mut cumulative = Vec::with_capacity(arms.len());
        let mut acc = 0;
        for arm in &arms {
            acc += arm.percent;
            cumulative.push(acc);
        }
        Ok(Self { arms, cumulative })
    }

    /// The validated specs, in declaration order.
    pub fn arms(&self) -> &[ArmSpec] {
        &self.arms
    }

    /// Number of arms.
    pub fn len(&self) -> usize {
        self.arms.len()
    }

    /// Whether the table is empty (never true for a validated table).
    pub fn is_empty(&self) -> bool {
        self.arms.is_empty()
    }

    /// The index of the arm serving `session` — a pure function of
    /// `(session, ordered percentages)`: sticky across requests, threads
    /// and restarts, and unchanged by promotions (which replace an arm's
    /// policy, not the split).
    pub fn arm_of(&self, session: u64) -> usize {
        let bucket = (splitmix64(session ^ ARM_SALT) % 100) as u32;
        self.cumulative
            .iter()
            .position(|&end| bucket < end)
            .unwrap_or(self.arms.len() - 1)
    }

    /// Looks an arm index up by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.arms.iter().position(|a| a.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_cli_lists_and_rejects_garbage() {
        assert_eq!(
            parse_arms("a=90, b=10").unwrap(),
            vec![ArmSpec::new("a", 90), ArmSpec::new("b", 10)]
        );
        assert!(matches!(parse_arms("a="), Err(ArmSpecError::BadToken(_))));
        assert!(matches!(parse_arms("a"), Err(ArmSpecError::BadToken(_))));
        assert!(matches!(parse_arms("a=x"), Err(ArmSpecError::BadToken(_))));
    }

    #[test]
    fn table_validates_names_and_split() {
        assert!(matches!(ArmTable::new(vec![]), Err(ArmSpecError::Empty)));
        assert!(matches!(
            ArmTable::new(vec![ArmSpec::new("a", 50), ArmSpec::new("a", 50)]),
            Err(ArmSpecError::BadName(_))
        ));
        assert!(matches!(
            ArmTable::new(vec![ArmSpec::new("a", 50), ArmSpec::new("b", 49)]),
            Err(ArmSpecError::BadSplit(99))
        ));
        let table = ArmTable::new(vec![ArmSpec::new("a", 100)]).unwrap();
        for session in 0..256 {
            assert_eq!(table.arm_of(session), 0);
        }
    }

    /// Arm assignment is decorrelated from shard routing: within each
    /// shard of a 2-shard fabric, the 50/50 arm split still holds.
    #[test]
    fn assignment_is_independent_of_shard_routing() {
        let table = ArmTable::new(vec![ArmSpec::new("a", 50), ArmSpec::new("b", 50)]).unwrap();
        let mut per_shard = [[0u32; 2]; 2];
        for session in 0..10_000u64 {
            let shard = vtm_core::routing::session_shard(session, 2);
            per_shard[shard][table.arm_of(session)] += 1;
        }
        for (shard, counts) in per_shard.iter().enumerate() {
            let total = counts[0] + counts[1];
            let frac = f64::from(counts[0]) / f64::from(total);
            assert!(
                (0.45..=0.55).contains(&frac),
                "shard {shard}: arm-a fraction {frac:.3} not ~0.5 ({counts:?})"
            );
        }
    }
}
