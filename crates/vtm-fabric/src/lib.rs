//! # vtm-fabric — sharded gateway fabric with hot-swap A/B policy routing
//!
//! One [`Gateway`](vtm_gateway::Gateway) funnels every quote through one
//! scheduler thread and one frozen policy — a global bottleneck. The
//! fabric removes it: N fully independent gateway shards per policy arm,
//! with all routing done by pure hashes of the session id, so capacity
//! grows linearly with shards and no coordination exists on the quote
//! path.
//!
//! * [`Fabric`] — the front: deterministic session→arm→shard routing,
//!   atomic [`Fabric::promote`] hot-swap, concurrent [`Fabric::shutdown`]
//!   drain,
//! * [`ArmSpec`] / [`parse_arms`] — named policy arms with hash-stable
//!   percentage assignment (`"a=90,b=10"`),
//! * [`FabricSnapshot`] / [`ArmSnapshot`] — per-arm quotes, latency
//!   percentiles, degraded/shed counters and revenue-proxy sums next to
//!   every per-shard gateway snapshot.
//!
//! The determinism contract extends the gateway's: a 1-shard/1-arm fabric
//! is bit-identical to a bare gateway on the same request stream, and with
//! journaling on, each shard's journal replays to that shard's
//! byte-identical service state
//! ([`vtm_journal::replay_fabric`] merges the digests).
//!
//! # Quickstart
//!
//! ```
//! use vtm_fabric::{ArmSpec, Fabric, FabricConfig};
//! use vtm_rl::env::ActionSpace;
//! use vtm_rl::ppo::{PpoAgent, PpoConfig};
//! use vtm_serve::{QuoteRequest, ServiceConfig};
//!
//! // A frozen policy (8-dim observations: history 4 × 2 features).
//! let snapshot = PpoAgent::new(
//!     PpoConfig::new(8, 1).with_seed(7),
//!     ActionSpace::scalar(5.0, 50.0),
//! )
//! .snapshot();
//!
//! // Two shards, 90/10 A/B split.
//! let config = FabricConfig::new(2, ServiceConfig::new(4, 2))
//!     .with_arms(vec![ArmSpec::new("control", 90), ArmSpec::new("candidate", 10)]);
//! let fabric = Fabric::start(&snapshot, config).unwrap();
//!
//! let quote = fabric.quote(QuoteRequest::new(42, vec![0.2, 0.4])).unwrap();
//! assert!(quote.price() >= 5.0 && quote.price() <= 50.0);
//!
//! // Promote the candidate arm onto a new snapshot, then drain.
//! fabric.promote("candidate", &snapshot).unwrap();
//! let report = fabric.shutdown();
//! assert_eq!(report.arms.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arms;
mod fabric;
mod telemetry;

pub use arms::{parse_arms, ArmSpec, ArmSpecError, ArmTable};
pub use fabric::{Fabric, FabricConfig, FabricError, FabricTicket};
pub use telemetry::{ArmSnapshot, FabricSnapshot, ShardTelemetry};
