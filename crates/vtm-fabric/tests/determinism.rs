//! Fabric acceptance tests: the determinism contract.
//!
//! (1) A 1-shard/1-arm fabric is *bit-identical* to a bare [`Gateway`] on
//! the same request stream (quote digests and service-state digests), so
//! stacking the fabric on top of a gateway costs no reproducibility.
//! (2) With journaling on, each shard's journal replays to that shard's
//! byte-identical service state, and [`replay_fabric`] merges the per-shard
//! digests into the fabric digest.

use std::sync::Arc;

use vtm_fabric::{Fabric, FabricConfig};
use vtm_gateway::{Gateway, GatewayConfig};
use vtm_journal::{
    combine_shard_digests, replay_fabric, tagged_journal_path, JournalOptions, ReplayOptions,
};
use vtm_nn::codec::fnv1a;
use vtm_rl::env::ActionSpace;
use vtm_rl::ppo::{PpoAgent, PpoConfig};
use vtm_rl::snapshot::PolicySnapshot;
use vtm_serve::{PricingService, Quote, QuoteRequest, ServiceConfig};

const HISTORY: usize = 4;
const FEATURES: usize = 2;

fn snapshot(seed: u64) -> PolicySnapshot {
    PpoAgent::new(
        PpoConfig::new(HISTORY * FEATURES, 1).with_seed(seed),
        ActionSpace::scalar(5.0, 50.0),
    )
    .snapshot()
}

fn service_config() -> ServiceConfig {
    ServiceConfig::new(HISTORY, FEATURES)
}

/// The deterministic stream both sides replay, round-major.
fn stream(rounds: usize, sessions: usize) -> Vec<QuoteRequest> {
    (0..rounds)
        .flat_map(|round| {
            (0..sessions).map(move |s| {
                QuoteRequest::new(
                    s as u64,
                    (0..FEATURES)
                        .map(|f| ((round * 31 + s * 7 + f) % 13) as f64 / 13.0)
                        .collect(),
                )
            })
        })
        .collect()
}

fn quotes_digest(quotes: &[Quote]) -> u64 {
    let bytes: Vec<u8> = quotes
        .iter()
        .flat_map(|q| {
            q.session
                .to_le_bytes()
                .into_iter()
                .chain(u64::from(q.warmed).to_le_bytes())
                .chain(q.action.iter().flat_map(|a| a.to_bits().to_le_bytes()))
        })
        .collect();
    fnv1a(&bytes)
}

/// Acceptance criterion: 1-shard/1-arm fabric ≡ bare gateway, bit for bit
/// (quotes and end-state), submission order preserved.
#[test]
fn single_shard_single_arm_fabric_matches_bare_gateway_bitwise() {
    let snap = snapshot(11);
    let requests = stream(6, 16);

    let service = Arc::new(PricingService::from_snapshot(&snap, service_config()).unwrap());
    let gateway = Gateway::start(Arc::clone(&service), GatewayConfig::default());
    let bare: Vec<Quote> = requests
        .iter()
        .map(|req| gateway.quote(req.clone()).unwrap())
        .collect();
    let bare_state = service.state_digest();
    gateway.shutdown();

    let fabric = Fabric::start(&snap, FabricConfig::new(1, service_config())).unwrap();
    let fabricated: Vec<Quote> = requests
        .iter()
        .map(|req| fabric.quote(req.clone()).unwrap())
        .collect();
    let digests = fabric.shard_digests("default").unwrap();

    assert_eq!(quotes_digest(&fabricated), quotes_digest(&bare));
    assert_eq!(fabricated, bare);
    assert_eq!(digests, vec![bare_state]);
    assert_eq!(
        fabric.state_digest("default").unwrap(),
        combine_shard_digests(&[bare_state])
    );
    let report = fabric.shutdown();
    assert_eq!(report.arms[0].quotes, requests.len() as u64);
}

/// A multi-shard fabric routes every session to exactly one shard and
/// still answers the exact same per-session quotes as the 1-shard fabric
/// (routing moves sessions between services, it never changes pricing).
#[test]
fn shard_count_never_changes_quote_values() {
    let snap = snapshot(13);
    let requests = stream(5, 24);

    let one = Fabric::start(&snap, FabricConfig::new(1, service_config())).unwrap();
    let three = Fabric::start(&snap, FabricConfig::new(3, service_config())).unwrap();
    for req in &requests {
        assert_eq!(
            one.quote(req.clone()).unwrap(),
            three.quote(req.clone()).unwrap(),
            "session {} diverged between shard counts",
            req.session
        );
    }
    one.shutdown();
    let report = three.shutdown();
    // Sessions actually spread across the shards.
    let active = report
        .gateways
        .iter()
        .filter(|g| g.telemetry.completed > 0)
        .count();
    assert!(active >= 2, "expected ≥2 active shards, got {active}");
}

/// Acceptance criterion: per-shard journals replay to byte-identical
/// per-shard service state, and the fabric-level merge matches the live
/// merged digest.
#[test]
fn per_shard_journals_replay_to_live_shard_state() {
    let snap = snapshot(17);
    let shards = 2;
    let base = std::env::temp_dir().join(format!(
        "vtm_fabric_determinism_{}.vtmj",
        std::process::id()
    ));
    let config =
        FabricConfig::new(shards, service_config()).with_journal(JournalOptions::new(&base));
    let fabric = Fabric::start(&snap, config).unwrap();
    for req in stream(6, 16) {
        fabric.quote(req).unwrap();
    }
    let live_digests = fabric.shard_digests("default").unwrap();
    let journal_paths = fabric.journal_paths();
    assert_eq!(journal_paths.len(), shards);
    let report = fabric.shutdown(); // syncs every shard journal

    // Each shard journal replays onto a fresh service to the exact state
    // digest its live shard held.
    let fresh: Vec<PricingService> = (0..shards)
        .map(|_| PricingService::from_snapshot(&snap, service_config()).unwrap())
        .collect();
    let refs: Vec<&PricingService> = fresh.iter().collect();
    let arm_base = tagged_journal_path(&base, "default-g0");
    let replay = replay_fabric(&refs, &arm_base, &ReplayOptions::default()).unwrap();
    for (shard, shard_report) in replay.shards.iter().enumerate() {
        assert_eq!(
            shard_report.state_digest, live_digests[shard],
            "shard {shard} replay diverged from live state"
        );
        // The fabric journals exactly where it says it does.
        assert_eq!(
            journal_paths[shard].2,
            vtm_journal::shard_journal_path(&arm_base, shard)
        );
    }
    assert_eq!(replay.merged_digest, combine_shard_digests(&live_digests));
    assert_eq!(
        replay.total_frames(),
        report
            .gateways
            .iter()
            .map(|g| g.telemetry.journal_frames)
            .sum::<u64>()
    );

    for (_, _, path) in journal_paths {
        let _ = std::fs::remove_file(path);
    }
}
