//! Acceptance: hot swap under load drops zero tickets.
//!
//! Submitter threads hammer a 2-shard, 2-arm fabric while the main thread
//! promotes the `b` arm repeatedly. Every ticket admitted before, during
//! or after a promotion must resolve with a quote or a typed error (here:
//! all quotes — the load is closed-loop, so no backpressure fires), the
//! client-side and gateway-side books must balance exactly, and
//! submissions routed after the final promotion must be served by the new
//! policy, bit-identical to a fresh service built from the promoted
//! snapshot.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use vtm_fabric::{ArmSpec, Fabric, FabricConfig};
use vtm_rl::env::ActionSpace;
use vtm_rl::ppo::{PpoAgent, PpoConfig};
use vtm_rl::snapshot::PolicySnapshot;
use vtm_serve::{PricingService, QuoteRequest, ServiceConfig};

const HISTORY: usize = 4;
const FEATURES: usize = 2;

fn snapshot(seed: u64) -> PolicySnapshot {
    PpoAgent::new(
        PpoConfig::new(HISTORY * FEATURES, 1).with_seed(seed),
        ActionSpace::scalar(5.0, 50.0),
    )
    .snapshot()
}

fn service_config() -> ServiceConfig {
    ServiceConfig::new(HISTORY, FEATURES)
}

fn request(session: u64, round: u64) -> QuoteRequest {
    QuoteRequest::new(
        session,
        (0..FEATURES as u64)
            .map(|f| ((session * 13 + round * 5 + f) % 17) as f64 / 17.0)
            .collect(),
    )
}

#[test]
fn hot_swap_under_load_drops_no_tickets() {
    const WRITERS: u64 = 4;
    const SESSIONS_PER_WRITER: u64 = 32;
    const PROMOTIONS: u64 = 3;

    let config = FabricConfig::new(2, service_config())
        .with_arms(vec![ArmSpec::new("a", 50), ArmSpec::new("b", 50)]);
    let fabric = Fabric::start(&snapshot(21), config).unwrap();

    let stop = AtomicBool::new(false);
    let submitted = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for writer in 0..WRITERS {
            let fabric = &fabric;
            let (stop, submitted) = (&stop, &submitted);
            scope.spawn(move || {
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for s in 0..SESSIONS_PER_WRITER {
                        let session = writer * 1_000 + s;
                        submitted.fetch_add(1, Ordering::Relaxed);
                        let quote = fabric
                            .submit(request(session, round))
                            .expect("admission failed under closed-loop load")
                            .wait()
                            .expect("ticket dropped across a hot swap");
                        assert_eq!(quote.session, session, "ticket misrouted");
                    }
                    round += 1;
                }
            });
        }

        // Promote arm `b` repeatedly while the writers are mid-flight.
        for promo in 0..PROMOTIONS {
            std::thread::sleep(std::time::Duration::from_millis(20));
            fabric.promote("b", &snapshot(100 + promo)).unwrap();
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        stop.store(true, Ordering::Relaxed);
        // The scope joins the writers; every outstanding ticket has been
        // waited on by then, so reaching this point *is* the liveness
        // assertion (no hang, no double resolution by construction of
        // `wait(self)`).
    });

    // Post-swap equivalence: fresh sessions routed to arm `b` must be
    // served by the last promoted policy — bit-identical to a bare
    // service built from that snapshot. Fresh arm-`a` sessions must still
    // see the original policy. Fresh session ids (never used above) keep
    // both sides' session history identical.
    let last = snapshot(100 + PROMOTIONS - 1);
    let first = snapshot(21);
    let fresh_b = PricingService::from_snapshot(&last, service_config()).unwrap();
    let fresh_a = PricingService::from_snapshot(&first, service_config()).unwrap();
    let mut checked = [0u32; 2];
    for session in 1_000_000..1_000_200u64 {
        for round in 0..3 {
            let req = request(session, round);
            let live = fabric.quote(req.clone()).unwrap();
            let bare = if fabric.arm_of(session) == "b" {
                checked[1] += 1;
                fresh_b.quote_one(&req).unwrap()
            } else {
                checked[0] += 1;
                fresh_a.quote_one(&req).unwrap()
            };
            assert_eq!(live, bare, "post-swap quote mismatch for session {session}");
        }
    }
    assert!(
        checked[0] > 0 && checked[1] > 0,
        "both arms must be exercised"
    );

    let report = fabric.shutdown();
    // Books balance: every client-side completion is exactly one
    // gateway-side completion, across live and retired generations.
    let completed: u64 = report.gateways.iter().map(|g| g.telemetry.completed).sum();
    let gw_submitted: u64 = report.gateways.iter().map(|g| g.telemetry.submitted).sum();
    let expected = submitted.load(Ordering::Relaxed) + 600; // + equivalence phase
    assert_eq!(gw_submitted, expected);
    assert_eq!(
        completed, expected,
        "a ticket was dropped or double-counted"
    );
    assert_eq!(
        report
            .gateways
            .iter()
            .map(|g| g.telemetry.failed)
            .sum::<u64>(),
        0
    );
    for gateway in &report.gateways {
        assert_eq!(gateway.telemetry.queue_depth, 0, "undrained queue");
    }
    // Arm telemetry: every quote was recorded against its arm, and the
    // promotions were counted.
    let arm_quotes: u64 = report.arms.iter().map(|a| a.quotes).sum();
    assert_eq!(arm_quotes, expected);
    assert_eq!(report.arms[1].promotions, PROMOTIONS);
    assert_eq!(report.arms[0].promotions, 0);
    // All four generations of arm `b` (initial + 3 promotions) drained.
    let mut b_generations: Vec<u64> = report
        .gateways
        .iter()
        .filter(|g| g.arm == "b")
        .map(|g| g.generation)
        .collect();
    b_generations.sort_unstable();
    b_generations.dedup();
    assert_eq!(b_generations, vec![0, 1, 2, 3]);
}
