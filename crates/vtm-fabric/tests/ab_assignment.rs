//! Satellite: fixed-seed property loop over the A/B assignment contract.
//!
//! (a) A session's arm never changes across reassignment-free runs — the
//!     assignment is a pure function of `(session, ordered percentages)`.
//! (b) Arm split fractions converge to the configured percentages within
//!     tolerance at 10⁴ sessions.
//! (c) A hot swap changes quoted prices *only* for the promoted arm —
//!     pinned by comparing per-arm FNV quote digests between a swapped and
//!     an unswapped fabric, and by replaying the promoted arm's post-swap
//!     stream against a fresh service built from the new snapshot.

use vtm_fabric::{ArmSpec, ArmTable, Fabric, FabricConfig};
use vtm_nn::codec::fnv1a;
use vtm_rl::env::ActionSpace;
use vtm_rl::ppo::{PpoAgent, PpoConfig};
use vtm_rl::snapshot::PolicySnapshot;
use vtm_serve::{PricingService, Quote, QuoteRequest, ServiceConfig};

const HISTORY: usize = 4;
const FEATURES: usize = 2;
const SESSIONS: u64 = 10_000;

fn snapshot(seed: u64) -> PolicySnapshot {
    PpoAgent::new(
        PpoConfig::new(HISTORY * FEATURES, 1).with_seed(seed),
        ActionSpace::scalar(5.0, 50.0),
    )
    .snapshot()
}

fn service_config() -> ServiceConfig {
    ServiceConfig::new(HISTORY, FEATURES)
}

fn arms_90_10() -> Vec<ArmSpec> {
    vec![ArmSpec::new("a", 90), ArmSpec::new("b", 10)]
}

fn request(session: u64, round: usize) -> QuoteRequest {
    QuoteRequest::new(
        session,
        (0..FEATURES)
            .map(|f| ((session as usize * 13 + round * 5 + f) % 17) as f64 / 17.0)
            .collect(),
    )
}

fn digest_quotes(quotes: &[Quote]) -> u64 {
    let bytes: Vec<u8> = quotes
        .iter()
        .flat_map(|q| {
            q.session
                .to_le_bytes()
                .into_iter()
                .chain(q.action.iter().flat_map(|a| a.to_bits().to_le_bytes()))
        })
        .collect();
    fnv1a(&bytes)
}

/// Property (a): assignment is sticky. Two independently constructed
/// tables (and a live fabric) agree on every session's arm, and repeated
/// evaluation never flips an assignment.
#[test]
fn arm_assignment_is_stable_across_runs() {
    let splits: &[&[(&str, u32)]] = &[
        &[("a", 90), ("b", 10)],
        &[("a", 50), ("b", 50)],
        &[("a", 60), ("b", 30), ("c", 10)],
    ];
    for split in splits {
        let spec: Vec<ArmSpec> = split.iter().map(|(n, p)| ArmSpec::new(*n, *p)).collect();
        let run1 = ArmTable::new(spec.clone()).unwrap();
        let run2 = ArmTable::new(spec.clone()).unwrap();
        for session in 0..SESSIONS {
            assert_eq!(
                run1.arm_of(session),
                run2.arm_of(session),
                "session {session} flipped arms between runs ({split:?})"
            );
            assert_eq!(run1.arm_of(session), run1.arm_of(session));
        }
    }
    // The fabric exposes the same pure function.
    let fabric = Fabric::start(
        &snapshot(3),
        FabricConfig::new(1, service_config()).with_arms(arms_90_10()),
    )
    .unwrap();
    let table = ArmTable::new(arms_90_10()).unwrap();
    for session in 0..1000 {
        let expect = &table.arms()[table.arm_of(session)].name;
        assert_eq!(fabric.arm_of(session), expect);
    }
    fabric.shutdown();
}

/// Property (b): the hash split converges to the configured percentages —
/// within ±2 percentage points at 10⁴ sequential sessions, and for a
/// spread of session-id ranges (the hash has no favored region).
#[test]
fn arm_split_converges_to_configured_percentages() {
    let table = ArmTable::new(arms_90_10()).unwrap();
    for base in [0u64, 1 << 20, 1 << 40, u64::MAX - SESSIONS] {
        let mut counts = [0u64; 2];
        for session in base..base + SESSIONS {
            counts[table.arm_of(session)] += 1;
        }
        let frac_a = counts[0] as f64 / SESSIONS as f64;
        assert!(
            (frac_a - 0.90).abs() < 0.02,
            "base {base:#x}: arm-a fraction {frac_a:.4} not within 2% of 0.90"
        );
    }
    // Three-way split converges too.
    let table = ArmTable::new(vec![
        ArmSpec::new("a", 60),
        ArmSpec::new("b", 30),
        ArmSpec::new("c", 10),
    ])
    .unwrap();
    let mut counts = [0u64; 3];
    for session in 0..SESSIONS {
        counts[table.arm_of(session)] += 1;
    }
    for (i, target) in [0.60, 0.30, 0.10].iter().enumerate() {
        let frac = counts[i] as f64 / SESSIONS as f64;
        assert!(
            (frac - target).abs() < 0.02,
            "arm {i} fraction {frac:.4} not within 2% of {target}"
        );
    }
}

/// Property (c): a hot swap changes prices only for the promoted arm.
///
/// Two 2-shard fabrics replay the same fixed-seed stream; fabric 2
/// promotes arm `b` midway. Per-arm FNV quote digests over the post-swap
/// phase: arm `a` digests are *equal* (untouched by the swap), arm `b`
/// digests *differ* (new policy). The promoted arm's post-swap quotes are
/// additionally replayed against a fresh bare service built from the new
/// snapshot — they must match bit for bit.
#[test]
fn hot_swap_changes_prices_only_for_promoted_arm() {
    let old_snap = snapshot(5);
    let new_snap = snapshot(6);
    let config = || FabricConfig::new(2, service_config()).with_arms(arms_90_10());
    let control = Fabric::start(&old_snap, config()).unwrap();
    let swapped = Fabric::start(&old_snap, config()).unwrap();
    let table = ArmTable::new(arms_90_10()).unwrap();

    // Phase 1: identical warm-up on both fabrics.
    for round in 0..3 {
        for session in 0..400 {
            let a = control.quote(request(session, round)).unwrap();
            let b = swapped.quote(request(session, round)).unwrap();
            assert_eq!(a, b, "fabrics diverged before any promotion");
        }
    }

    swapped.promote("b", &new_snap).unwrap();
    assert_eq!(
        swapped.arm_fingerprints(),
        vec![
            ("a".to_string(), control.arm_fingerprints()[0].1),
            (
                "b".to_string(),
                vtm_serve::SharedPolicy::from_snapshot(&new_snap)
                    .unwrap()
                    .fingerprint()
            ),
        ]
    );

    // Phase 2: same stream on both; split the quotes per arm.
    let mut per_arm: [[Vec<Quote>; 2]; 2] = Default::default();
    for round in 3..6 {
        for session in 0..400 {
            let arm = table.arm_of(session);
            per_arm[0][arm].push(control.quote(request(session, round)).unwrap());
            per_arm[1][arm].push(swapped.quote(request(session, round)).unwrap());
        }
    }
    assert_eq!(
        digest_quotes(&per_arm[0][0]),
        digest_quotes(&per_arm[1][0]),
        "unpromoted arm's prices changed across the swap"
    );
    assert_ne!(
        digest_quotes(&per_arm[0][1]),
        digest_quotes(&per_arm[1][1]),
        "promoted arm's prices did not change"
    );

    // Acceptance: post-swap quotes for the promoted arm match a fresh
    // service loaded from the new snapshot replaying the same per-session
    // stream (the promoted gateways started with fresh session state).
    let fresh = PricingService::from_snapshot(&new_snap, service_config()).unwrap();
    let mut replayed = Vec::new();
    for round in 3..6 {
        for session in 0..400 {
            if table.arm_of(session) == 1 {
                replayed.push(fresh.quote_one(&request(session, round)).unwrap());
            }
        }
    }
    assert_eq!(per_arm[1][1], replayed);

    control.shutdown();
    let report = swapped.shutdown();
    assert_eq!(report.arms[1].promotions, 1);
    assert_eq!(report.arms[0].promotions, 0);
    // The swapped fabric drained both generations of arm b's gateways.
    let b_generations: Vec<u64> = report
        .gateways
        .iter()
        .filter(|g| g.arm == "b")
        .map(|g| g.generation)
        .collect();
    assert!(b_generations.contains(&0) && b_generations.contains(&1));
}
