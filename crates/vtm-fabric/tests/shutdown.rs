//! Satellite: `Fabric::shutdown` drains all shards concurrently, and no
//! ticket resolves twice or hangs when shutdown races active load.
//!
//! Writers keep a window of outstanding tickets (not just submit-and-wait)
//! so the drain must flush genuinely in-flight work. Shutdown is called
//! while they are mid-window, twice concurrently (idempotence under race);
//! every outstanding ticket must still resolve exactly once, with a quote
//! or a typed error, and the client- and gateway-side books must agree.

use std::sync::atomic::{AtomicU64, Ordering};

use vtm_fabric::{ArmSpec, Fabric, FabricConfig, FabricError, FabricTicket};
use vtm_rl::env::ActionSpace;
use vtm_rl::ppo::{PpoAgent, PpoConfig};
use vtm_serve::{QuoteRequest, ServiceConfig};

const HISTORY: usize = 4;
const FEATURES: usize = 2;

fn request(session: u64, round: u64) -> QuoteRequest {
    QuoteRequest::new(
        session,
        (0..FEATURES as u64)
            .map(|f| ((session * 7 + round * 3 + f) % 11) as f64 / 11.0)
            .collect(),
    )
}

#[test]
fn shutdown_under_load_resolves_every_ticket_exactly_once() {
    const WRITERS: u64 = 4;
    const WINDOW: usize = 8;

    let snapshot = PpoAgent::new(
        PpoConfig::new(HISTORY * FEATURES, 1).with_seed(33),
        ActionSpace::scalar(5.0, 50.0),
    )
    .snapshot();
    let config = FabricConfig::new(2, ServiceConfig::new(HISTORY, FEATURES))
        .with_arms(vec![ArmSpec::new("a", 50), ArmSpec::new("b", 50)]);
    let fabric = Fabric::start(&snapshot, config).unwrap();

    let ok = AtomicU64::new(0);
    let failed_waits = AtomicU64::new(0);
    let snapshots = std::thread::scope(|scope| {
        for writer in 0..WRITERS {
            let fabric = &fabric;
            let (ok, failed_waits) = (&ok, &failed_waits);
            scope.spawn(move || {
                let mut round = 0u64;
                'outer: loop {
                    // Open a window of outstanding tickets, then wait them
                    // all — some windows will straddle the shutdown.
                    let mut window: Vec<FabricTicket> = Vec::with_capacity(WINDOW);
                    for s in 0..WINDOW as u64 {
                        match fabric.submit(request(writer * 100 + s, round)) {
                            Ok(ticket) => window.push(ticket),
                            Err(FabricError::ShutDown | FabricError::Gateway(_)) => {
                                // Stopped admitting: drain what we hold.
                                for ticket in window {
                                    match ticket.wait() {
                                        Ok(_) => ok.fetch_add(1, Ordering::Relaxed),
                                        Err(_) => failed_waits.fetch_add(1, Ordering::Relaxed),
                                    };
                                }
                                break 'outer;
                            }
                            Err(other) => panic!("unexpected admission error: {other}"),
                        }
                    }
                    for ticket in window {
                        match ticket.wait() {
                            Ok(_) => ok.fetch_add(1, Ordering::Relaxed),
                            Err(_) => failed_waits.fetch_add(1, Ordering::Relaxed),
                        };
                    }
                    round += 1;
                }
            });
        }

        // Let the writers get mid-window, then shut down twice, racing.
        std::thread::sleep(std::time::Duration::from_millis(30));
        let fabric = &fabric;
        let first = scope.spawn(move || fabric.shutdown());
        let second = scope.spawn(move || fabric.shutdown());
        (first.join().unwrap(), second.join().unwrap())
        // Scope exit joins the writers: reaching it proves no ticket hung.
    });

    // Idempotence under race: both calls observed the same final snapshot.
    assert_eq!(snapshots.0, snapshots.1);
    let report = snapshots.0;

    // Books balance. A ticket resolves exactly once: client-side OK count
    // equals gateway-side completions, client-side failed waits equal
    // gateway-side failures (tickets flushed with `ShuttingDown`), and
    // nothing is left queued.
    let completed: u64 = report.gateways.iter().map(|g| g.telemetry.completed).sum();
    let failed: u64 = report.gateways.iter().map(|g| g.telemetry.failed).sum();
    assert_eq!(ok.load(Ordering::Relaxed), completed);
    assert_eq!(failed_waits.load(Ordering::Relaxed), failed);
    assert!(completed > 0, "shutdown fired before any ticket resolved");
    for gateway in &report.gateways {
        assert_eq!(gateway.telemetry.queue_depth, 0, "undrained queue");
    }
    // Both arms and both shards actually drained: 2 arms × 2 shards.
    assert_eq!(report.gateways.len(), 4);

    // The fabric stays shut.
    assert!(matches!(
        fabric.submit(request(7, 0)),
        Err(FabricError::ShutDown)
    ));
    assert_eq!(fabric.shutdown(), report);
    assert_eq!(fabric.shard_digests("a"), None);
}
