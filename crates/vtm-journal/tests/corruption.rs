//! Corruption property tests: a fixed-seed loop flips one random byte per
//! iteration in journal frames and snapshot containers. Every flip must be
//! *detected* — a typed error carrying the exact failing frame index (or a
//! recover-tail cut at exactly that frame) — and never panic, never pass a
//! corrupted frame through as valid data.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vtm_journal::{
    scan_journal_bytes, JournalError, JournalFrame, JournalWriter, ScanMode, StateSnapshot,
};
use vtm_nn::codec::CodecError;
use vtm_rl::env::ActionSpace;
use vtm_rl::ppo::{PpoAgent, PpoConfig};
use vtm_rl::snapshot::PolicySnapshot;
use vtm_serve::{PricingService, QuoteRequest, ServiceConfig};

const FEATURES: usize = 2;
const FRAMES: usize = 16;

fn policy(seed: u64) -> PolicySnapshot {
    PpoAgent::new(
        PpoConfig::new(4, 1).with_seed(seed),
        ActionSpace::scalar(5.0, 50.0),
    )
    .snapshot()
}

fn journal_bytes(tag: &str) -> Vec<u8> {
    let path =
        std::env::temp_dir().join(format!("vtm_corruption_{tag}_{}.vtmj", std::process::id()));
    let mut journal = JournalWriter::create(&path).unwrap();
    for i in 0..FRAMES as u64 {
        journal
            .append(&QuoteRequest::new(i % 3, vec![i as f64 * 0.25, 0.75]))
            .unwrap();
    }
    journal.sync().unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    bytes
}

#[test]
fn every_single_byte_flip_in_a_journal_is_detected_at_the_right_frame() {
    let clean = journal_bytes("flip");
    let frame_len = JournalFrame::framed_len(FEATURES);
    assert_eq!(clean.len(), FRAMES * frame_len);

    let mut rng = StdRng::seed_from_u64(0xC0FF_EE00_DEAD_BEEF);
    let mut seen_checksum = 0usize;
    let mut seen_other = 0usize;
    for iteration in 0..400 {
        let pos = rng.gen_range(0..clean.len());
        let bit = rng.gen_range(0..8u32);
        let mut corrupt = clean.clone();
        corrupt[pos] ^= 1 << bit;
        let hit = pos / frame_len;

        // Strict scan: always a typed error at exactly the flipped frame.
        match scan_journal_bytes(&corrupt, ScanMode::Strict) {
            Err(JournalError::Frame { index, source }) => {
                assert_eq!(
                    index, hit,
                    "iteration {iteration}: flip at byte {pos} blamed frame {index}, \
                     expected {hit}"
                );
                match source {
                    CodecError::ChecksumMismatch { .. } => seen_checksum += 1,
                    _ => seen_other += 1,
                }
            }
            Err(other) => {
                panic!("iteration {iteration}: flip at byte {pos}: unexpected error {other}")
            }
            Ok(_) => {
                panic!("iteration {iteration}: flip of bit {bit} at byte {pos} went undetected")
            }
        }

        // RecoverTail may only "forgive" a flip by cutting the journal at
        // the flipped frame (a corrupted length field reads as a frame that
        // runs past end-of-file). It must never return a corrupted frame.
        match scan_journal_bytes(&corrupt, ScanMode::RecoverTail) {
            Ok(scanned) => {
                assert_eq!(scanned.frames.len(), hit, "iteration {iteration}");
                assert_eq!(
                    scanned.truncated_tail,
                    (clean.len() - hit * frame_len) as u64
                );
                for (i, frame) in scanned.frames.iter().enumerate() {
                    assert_eq!(frame.seq, i as u64);
                }
            }
            Err(JournalError::Frame { index, .. }) => assert_eq!(index, hit),
            Err(other) => {
                panic!("iteration {iteration}: flip at byte {pos}: unexpected error {other}")
            }
        }
    }
    // The loop must have exercised the dominant detection path (payload and
    // checksum flips) plus header-field flips (magic/version/kind/length).
    assert!(seen_checksum > 0, "no checksum mismatch ever observed");
    assert!(seen_other > 0, "no header-field corruption ever observed");
}

#[test]
fn every_single_byte_flip_in_a_snapshot_is_detected() {
    let snap = policy(51);
    let config = ServiceConfig::new(2, FEATURES).with_shards(2);
    let service = PricingService::from_snapshot(&snap, config).unwrap();
    for i in 0..10u64 {
        service
            .quote_batch(&[QuoteRequest::new(i % 4, vec![0.5, i as f64 * 0.1])])
            .unwrap();
    }
    let clean = StateSnapshot::capture(&service, 10).to_bytes();
    assert_eq!(
        StateSnapshot::from_bytes(&clean).unwrap().frames_applied,
        10
    );

    let mut rng = StdRng::seed_from_u64(0x5EED_5EED_5EED_5EED);
    for iteration in 0..200 {
        let pos = rng.gen_range(0..clean.len());
        let bit = rng.gen_range(0..8u32);
        let mut corrupt = clean.clone();
        corrupt[pos] ^= 1 << bit;
        match StateSnapshot::from_bytes(&corrupt) {
            Err(JournalError::Snapshot(_)) => {}
            Err(other) => {
                panic!("iteration {iteration}: flip at byte {pos}: unexpected error {other}")
            }
            Ok(_) => panic!(
                "iteration {iteration}: flip of bit {bit} at byte {pos} of a snapshot went \
                 undetected"
            ),
        }
        // Random truncation of the container is equally typed.
        let cut = rng.gen_range(0..clean.len());
        assert!(
            matches!(
                StateSnapshot::from_bytes(&clean[..cut]),
                Err(JournalError::Snapshot(_))
            ),
            "iteration {iteration}: truncation to {cut} bytes went undetected"
        );
    }
}

#[test]
fn flips_in_restored_state_payloads_never_corrupt_the_service() {
    // Even when the container checksum is *recomputed* over a flipped state
    // payload (a hostile or buggy writer), restore must either reject the
    // payload or leave the service in a state it fully owns — never panic.
    let snap = policy(52);
    let config = ServiceConfig::new(2, FEATURES).with_shards(2);
    let service = PricingService::from_snapshot(&snap, config).unwrap();
    for i in 0..8u64 {
        service
            .quote_batch(&[QuoteRequest::new(i, vec![0.3, 0.6])])
            .unwrap();
    }
    let reference = StateSnapshot::capture(&service, 8);
    let mut rng = StdRng::seed_from_u64(0xFEED_FACE_CAFE_F00D);
    let mut rejected = 0usize;
    for _ in 0..200 {
        let mut tampered = reference.clone();
        let pos = rng.gen_range(0..tampered.state.len());
        tampered.state[pos] ^= 1 << rng.gen_range(0..8u32);
        let target = PricingService::from_snapshot(&snap, config).unwrap();
        match tampered.restore_into(&target) {
            Err(JournalError::Serve(_)) => rejected += 1,
            Err(other) => panic!("unexpected error {other}"),
            // Some flips produce a structurally valid (if different) state —
            // e.g. a flipped feature bit. That is indistinguishable from a
            // legitimate snapshot by construction; the container checksum is
            // the layer that catches it (previous test).
            Ok(()) => {}
        }
    }
    assert!(rejected > 0, "no structural rejection ever observed");
}
