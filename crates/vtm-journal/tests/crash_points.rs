//! Crash-point fault injection: a process can die after *any* byte of the
//! journal reaches disk. Whatever the cut point, replay must recover exactly
//! the complete-frame prefix — byte-identical to an uninterrupted run over
//! the same prefix, pinned by FNV state digests — or return a typed error.
//! Never a panic, never a silently divergent state.

use vtm_journal::{
    replay_frames, replay_journal, scan_journal_bytes, JournalError, JournalFrame, JournalWriter,
    ReplayOptions, ScanMode,
};
use vtm_rl::env::ActionSpace;
use vtm_rl::ppo::{PpoAgent, PpoConfig};
use vtm_rl::snapshot::PolicySnapshot;
use vtm_serve::{PricingService, QuoteRequest, ServiceConfig};

const FEATURES: usize = 2;

fn policy(seed: u64) -> PolicySnapshot {
    PpoAgent::new(
        PpoConfig::new(4, 1).with_seed(seed),
        ActionSpace::scalar(5.0, 50.0),
    )
    .snapshot()
}

/// Small shards with capacity and TTL pressure, so the digest also pins
/// eviction and expiry bookkeeping — the state a naive recovery would lose.
fn config() -> ServiceConfig {
    ServiceConfig::new(2, FEATURES)
        .with_shards(2)
        .with_session_capacity(2)
        .with_session_ttl(6)
}

fn request(i: u64) -> QuoteRequest {
    QuoteRequest::new(
        i % 5,
        vec![(i % 7) as f64 * 0.125, ((i * 3) % 11) as f64 * 0.09],
    )
}

/// Journals `total` requests to a temp file and returns the raw bytes plus
/// the reference digest after every prefix length: `digests[k]` is the
/// state digest an uninterrupted service holds after quoting requests
/// `0..k`.
fn record(tag: &str, snap: &PolicySnapshot, total: u64) -> (Vec<u8>, Vec<u64>) {
    let path = std::env::temp_dir().join(format!(
        "vtm_crash_points_{tag}_{}.vtmj",
        std::process::id()
    ));
    let mut journal = JournalWriter::create(&path).unwrap();
    let live = PricingService::from_snapshot(snap, config()).unwrap();
    let mut digests = vec![live.state_digest()];
    for i in 0..total {
        let req = request(i);
        journal.append(&req).unwrap();
        live.quote_batch(std::slice::from_ref(&req)).unwrap();
        digests.push(live.state_digest());
    }
    journal.sync().unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    (bytes, digests)
}

/// Exhaustive small run: cut the journal at EVERY byte offset. Recovery
/// must come back with exactly the complete-frame prefix and reconstruct
/// its digest; strict scans must name the torn frame.
#[test]
fn every_byte_offset_recovers_to_the_last_complete_frame() {
    let snap = policy(41);
    let total = 8u64;
    let (bytes, digests) = record("every_byte", &snap, total);
    let frame_len = JournalFrame::framed_len(FEATURES);
    assert_eq!(bytes.len(), total as usize * frame_len);

    for cut in 0..=bytes.len() {
        let truncated = &bytes[..cut];
        let complete = cut / frame_len;
        let torn = (cut % frame_len) as u64;

        // RecoverTail: every complete frame survives, the torn remainder is
        // reported, nothing panics.
        let scanned = scan_journal_bytes(truncated, ScanMode::RecoverTail)
            .unwrap_or_else(|e| panic!("cut at byte {cut}: recover-tail scan failed: {e}"));
        assert_eq!(scanned.frames.len(), complete, "cut at byte {cut}");
        assert_eq!(scanned.truncated_tail, torn, "cut at byte {cut}");

        // The recovered prefix replays to the uninterrupted run's digest.
        let service = PricingService::from_snapshot(&snap, config()).unwrap();
        let applied = replay_frames(&service, &scanned.frames, 0, 3).unwrap();
        assert_eq!(applied, complete as u64);
        assert_eq!(
            service.state_digest(),
            digests[complete],
            "cut at byte {cut}: replayed state diverged from the uninterrupted run"
        );

        // Strict mode: a clean boundary is fine, a torn tail is a typed
        // error naming the exact frame.
        match scan_journal_bytes(truncated, ScanMode::Strict) {
            Ok(scanned) => {
                assert_eq!(
                    torn, 0,
                    "cut at byte {cut}: strict scan accepted a torn tail"
                );
                assert_eq!(scanned.frames.len(), complete);
            }
            Err(JournalError::Frame { index, source }) => {
                assert_ne!(
                    torn, 0,
                    "cut at byte {cut}: strict scan rejected a clean journal"
                );
                assert_eq!(index, complete, "cut at byte {cut}");
                assert!(
                    matches!(source, vtm_nn::codec::CodecError::Truncated { .. }),
                    "cut at byte {cut}: unexpected source {source}"
                );
            }
            Err(other) => panic!("cut at byte {cut}: unexpected error {other}"),
        }
    }
}

/// Larger run: cut at every frame boundary (and a few mid-frame offsets),
/// going through real files and the full `replay_journal` path.
#[test]
fn frame_boundary_cuts_replay_through_files() {
    let snap = policy(42);
    let total = 96u64;
    let (bytes, digests) = record("boundaries", &snap, total);
    let frame_len = JournalFrame::framed_len(FEATURES);
    let path = std::env::temp_dir().join(format!(
        "vtm_crash_points_boundary_{}.vtmj",
        std::process::id()
    ));

    for k in 0..=total as usize {
        for extra in [0usize, 1, frame_len / 2, frame_len - 1] {
            let cut = (k * frame_len + extra).min(bytes.len());
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let service = PricingService::from_snapshot(&snap, config()).unwrap();
            let report = replay_journal(&service, &path, None, &ReplayOptions::default()).unwrap();
            let complete = cut / frame_len;
            assert_eq!(report.total_frames, complete as u64, "cut at byte {cut}");
            assert_eq!(report.frames_applied, complete as u64);
            assert_eq!(report.truncated_tail, (cut % frame_len) as u64);
            assert_eq!(report.state_digest, digests[complete], "cut at byte {cut}");
        }
    }
    std::fs::remove_file(&path).unwrap();
}

/// The full crash → recover → resume cycle: truncate mid-frame, re-open
/// with `JournalWriter::recover`, append the lost requests again, and end
/// at the uninterrupted run's exact digest.
#[test]
fn recover_and_resume_reaches_the_uninterrupted_digest() {
    let snap = policy(43);
    let total = 24u64;
    let (bytes, digests) = record("resume", &snap, total);
    let frame_len = JournalFrame::framed_len(FEATURES);
    let path = std::env::temp_dir().join(format!(
        "vtm_crash_points_resume_{}.vtmj",
        std::process::id()
    ));
    for crash_after in [0u64, 5, 11, 23] {
        // Crash 13 bytes into the frame after `crash_after` complete frames.
        let cut = (crash_after as usize * frame_len + 13).min(bytes.len());
        std::fs::write(&path, &bytes[..cut]).unwrap();

        let mut journal = JournalWriter::recover(&path).unwrap();
        assert_eq!(journal.frames(), crash_after);
        // The restarted process replays the journal to rebuild its state,
        // then keeps serving (and journaling) where it left off.
        let service = PricingService::from_snapshot(&snap, config()).unwrap();
        let report = replay_journal(&service, &path, None, &ReplayOptions::default()).unwrap();
        assert_eq!(report.state_digest, digests[crash_after as usize]);
        for i in crash_after..total {
            let req = request(i);
            journal.append(&req).unwrap();
            service.quote_batch(std::slice::from_ref(&req)).unwrap();
        }
        journal.sync().unwrap();
        assert_eq!(
            service.state_digest(),
            digests[total as usize],
            "crash after {crash_after} frames: resumed run diverged"
        );
        // And the repaired journal now replays to the same final digest.
        let fresh = PricingService::from_snapshot(&snap, config()).unwrap();
        let report = replay_journal(&fresh, &path, None, &ReplayOptions::default()).unwrap();
        assert_eq!(report.total_frames, total);
        assert_eq!(report.state_digest, digests[total as usize]);
    }
    std::fs::remove_file(&path).unwrap();
}
