//! # vtm-journal — audit-grade request journal with deterministic replay
//!
//! The serving stack's determinism contracts (serial ≡ parallel, batched ≡
//! per-request, gateway ≡ `quote_batch`) mean a
//! [`PricingService`](vtm_serve::PricingService)'s state is a *pure
//! function of its admitted request sequence*. This crate turns that
//! property into a production feature:
//!
//! * **append-only frame journal** ([`JournalWriter`]) — every admitted
//!   [`QuoteRequest`](vtm_serve::QuoteRequest) is framed with the
//!   workspace's `VTMW` container codec (magic, version,
//!   [`KIND_JOURNAL_FRAME`](vtm_nn::codec::KIND_JOURNAL_FRAME) tag,
//!   FNV-1a checksum) and appended in admission order;
//! * **state snapshots** ([`StateSnapshot`]) — a point-in-time capture of
//!   the service's session store and serving counters, tagged with the
//!   journal frame count it is consistent with and the policy-version
//!   fingerprint it belongs to;
//! * **deterministic replay** ([`replay_journal`]) — reconstructs
//!   *byte-identical* service state from any snapshot plus the journal
//!   suffix (or from genesis with no snapshot at all), pinned by
//!   [`state_digest`](vtm_serve::PricingService::state_digest);
//! * **crash recovery** — a process killed mid-write leaves a partial
//!   trailing frame; [`ScanMode::RecoverTail`] recovers every complete
//!   frame and reports the torn tail, while [`ScanMode::Strict`] treats
//!   *any* anomaly (truncation, bit flips, reordered frames) as a typed
//!   [`JournalError`] naming the exact failing frame — never a panic,
//!   never a silent divergence.
//!
//! ## On-disk frame format
//!
//! A journal is a plain concatenation of `VTMW` containers, one per
//! admitted request:
//!
//! ```text
//! +---------+---------+---------+-------------+---------------- payload ---------------+----------+
//! | "VTMW"  | version | kind=3  | payload_len | seq    | session | n_feat | features   | checksum |
//! | 4 bytes | u16 LE  | u16 LE  |   u64 LE    | u64 LE | u64 LE  | u64 LE | n× f64 LE  |  u64 LE  |
//! +---------+---------+---------+-------------+----------------------------------------+----------+
//! ```
//!
//! `seq` is the frame's zero-based position — scanners verify it so a
//! spliced or reordered journal is rejected. Features are raw `f64` bit
//! patterns, so record → replay is bit-exact. The checksum is FNV-1a over
//! the payload. Snapshots use the same container with kind
//! [`KIND_STATE_SNAPSHOT`](vtm_nn::codec::KIND_STATE_SNAPSHOT) and live
//! next to the journal as `<journal>.snap.<frames_applied>`.
//!
//! ## Example
//!
//! ```
//! use vtm_journal::{replay_journal, JournalWriter, ReplayOptions, StateSnapshot};
//! use vtm_rl::env::ActionSpace;
//! use vtm_rl::ppo::{PpoAgent, PpoConfig};
//! use vtm_serve::{PricingService, QuoteRequest, ServiceConfig};
//!
//! let agent = PpoAgent::new(PpoConfig::new(4, 1).with_seed(1), ActionSpace::scalar(5.0, 50.0));
//! let snapshot = agent.snapshot();
//! let config = ServiceConfig::new(2, 2);
//! let live = PricingService::from_snapshot(&snapshot, config).unwrap();
//!
//! // Record every admitted request, then serve it.
//! let path = std::env::temp_dir().join(format!("vtm_journal_doc_{}.vtmj", std::process::id()));
//! let mut journal = JournalWriter::create(&path).unwrap();
//! for round in 0..4u64 {
//!     let request = QuoteRequest::new(7, vec![0.25 * round as f64, 0.5]);
//!     journal.append(&request).unwrap();
//!     live.quote_batch(std::slice::from_ref(&request)).unwrap();
//! }
//! journal.sync().unwrap();
//!
//! // A fresh service + the journal reconstruct byte-identical state.
//! let recovered = PricingService::from_snapshot(&snapshot, config).unwrap();
//! let report = replay_journal(&recovered, &path, None, &ReplayOptions::default()).unwrap();
//! assert_eq!(report.frames_applied, 4);
//! assert_eq!(recovered.state_digest(), live.state_digest());
//! std::fs::remove_file(&path).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod fabric;
mod journal;
mod replay;
mod snapshot;

pub use error::JournalError;
pub use fabric::{
    combine_shard_digests, replay_fabric, shard_journal_path, shard_journal_paths,
    tagged_journal_path, FabricReplayReport,
};
pub use journal::{
    scan_journal, scan_journal_bytes, AppendLatency, JournalFrame, JournalOptions, JournalWriter,
    ScanMode, ScannedJournal,
};
pub use replay::{replay_frames, replay_journal, ReplayOptions, ReplayReport};
pub use snapshot::{find_latest_snapshot, find_snapshots, snapshot_path, StateSnapshot};
