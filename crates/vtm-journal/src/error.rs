//! Typed failure modes of the journal, snapshot and replay layers.

use std::fmt;
use std::io;

use vtm_nn::codec::CodecError;
use vtm_serve::ServeError;

/// Every way a journal operation can fail. Corrupt, truncated or mismatched
/// inputs are always reported through this enum — never a panic — and frame
/// errors carry the index of the exact offending frame so an operator can
/// locate the damage in the file.
#[derive(Debug)]
pub enum JournalError {
    /// Reading or writing a journal/snapshot file failed.
    Io(io::Error),
    /// A specific journal frame is corrupt (bad magic, checksum mismatch,
    /// truncation mid-stream, malformed payload, …).
    Frame {
        /// Zero-based index of the frame that failed to decode.
        index: usize,
        /// The underlying codec failure.
        source: CodecError,
    },
    /// A journal frame's recorded sequence number disagrees with its
    /// position in the file — the journal was spliced, reordered or written
    /// by two writers.
    SequenceGap {
        /// Zero-based index (file position) of the offending frame.
        index: usize,
        /// The sequence number the position implies.
        expected: u64,
        /// The sequence number the frame actually carries.
        found: u64,
    },
    /// A snapshot file is corrupt or structurally invalid.
    Snapshot(CodecError),
    /// The snapshot was captured under a different policy version than the
    /// service replaying it — restoring would silently change every quote.
    PolicyMismatch {
        /// Fingerprint of the replaying service's policy.
        expected: u64,
        /// Fingerprint recorded in the snapshot.
        found: u64,
    },
    /// The snapshot's service geometry (history length, feature width or
    /// shard count) disagrees with the replaying service's configuration.
    GeometryMismatch {
        /// Which dimension disagrees.
        what: &'static str,
        /// The value recorded in the snapshot.
        snapshot: u64,
        /// The replaying service's configured value.
        service: u64,
    },
    /// The snapshot claims more applied frames than the journal holds — it
    /// belongs to a longer journal (or the journal lost data).
    SnapshotAheadOfJournal {
        /// Frames the snapshot claims were applied before it was taken.
        frames_applied: u64,
        /// Complete frames actually present in the journal.
        journal_frames: u64,
    },
    /// Re-quoting a journaled request failed in the serving layer.
    Serve(ServeError),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(err) => write!(f, "journal i/o error: {err}"),
            JournalError::Frame { index, source } => {
                write!(f, "journal frame {index}: {source}")
            }
            JournalError::SequenceGap {
                index,
                expected,
                found,
            } => write!(
                f,
                "journal frame {index}: sequence gap (expected seq {expected}, found {found})"
            ),
            JournalError::Snapshot(err) => write!(f, "state snapshot error: {err}"),
            JournalError::PolicyMismatch { expected, found } => write!(
                f,
                "snapshot belongs to policy {found:#018x}, service runs {expected:#018x}"
            ),
            JournalError::GeometryMismatch {
                what,
                snapshot,
                service,
            } => write!(
                f,
                "snapshot {what} is {snapshot}, service is configured with {service}"
            ),
            JournalError::SnapshotAheadOfJournal {
                frames_applied,
                journal_frames,
            } => write!(
                f,
                "snapshot claims {frames_applied} applied frames but the journal holds only \
                 {journal_frames}"
            ),
            JournalError::Serve(err) => write!(f, "replay serve error: {err}"),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(err) => Some(err),
            JournalError::Frame { source, .. } => Some(source),
            JournalError::Snapshot(err) => Some(err),
            JournalError::Serve(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for JournalError {
    fn from(err: io::Error) -> Self {
        JournalError::Io(err)
    }
}

impl From<ServeError> for JournalError {
    fn from(err: ServeError) -> Self {
        JournalError::Serve(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases: Vec<JournalError> = vec![
            JournalError::Io(io::Error::new(io::ErrorKind::NotFound, "gone")),
            JournalError::Frame {
                index: 7,
                source: CodecError::ChecksumMismatch {
                    expected: 1,
                    found: 2,
                },
            },
            JournalError::SequenceGap {
                index: 3,
                expected: 3,
                found: 9,
            },
            JournalError::Snapshot(CodecError::Invalid("bad".into())),
            JournalError::PolicyMismatch {
                expected: 0xA,
                found: 0xB,
            },
            JournalError::GeometryMismatch {
                what: "shard count",
                snapshot: 4,
                service: 16,
            },
            JournalError::SnapshotAheadOfJournal {
                frames_applied: 10,
                journal_frames: 4,
            },
        ];
        for err in cases {
            assert!(!err.to_string().is_empty());
        }
        assert!(JournalError::Frame {
            index: 7,
            source: CodecError::Invalid("x".into()),
        }
        .to_string()
        .contains("frame 7"));
    }
}
