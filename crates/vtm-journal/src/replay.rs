//! The replay engine: reconstructs service state from a snapshot plus a
//! journal suffix.

use std::path::Path;

use vtm_serve::{PricingService, QuoteRequest};

use crate::error::JournalError;
use crate::journal::{scan_journal, JournalFrame, ScanMode};
use crate::snapshot::StateSnapshot;

/// Knobs for [`replay_journal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayOptions {
    /// Requests re-quoted per [`PricingService::quote_batch`] call. Batch
    /// slicing is state-invariant (the store's logical clocks advance per
    /// request, not per batch), so any chunk size reconstructs identical
    /// state — bigger chunks just replay faster.
    pub chunk: usize,
    /// How to treat a torn trailing frame (crash artifact vs corruption).
    pub mode: ScanMode,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        Self {
            chunk: 256,
            mode: ScanMode::RecoverTail,
        }
    }
}

/// What a replay did, including the digest that pins byte-identical state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayReport {
    /// Complete frames found in the journal.
    pub total_frames: u64,
    /// The first sequence number re-quoted (frames before it were covered
    /// by the snapshot).
    pub start_seq: u64,
    /// Frames actually re-quoted (`total_frames - start_seq`).
    pub frames_applied: u64,
    /// Bytes of torn partial frame dropped at the journal tail
    /// (only in [`ScanMode::RecoverTail`]).
    pub truncated_tail: u64,
    /// [`PricingService::state_digest`] after the replay finished.
    pub state_digest: u64,
}

/// Re-quotes the scanned frames with `seq >= start_seq` against `service`
/// in `chunk`-sized batches, returning how many were applied. This is the
/// core replay step once frames are already in memory; most callers want
/// [`replay_journal`].
///
/// # Errors
///
/// Returns [`JournalError::Serve`] when a re-quoted request is rejected by
/// the serving layer (e.g. a feature block whose width does not match the
/// replaying service's configuration).
pub fn replay_frames(
    service: &PricingService,
    frames: &[JournalFrame],
    start_seq: u64,
    chunk: usize,
) -> Result<u64, JournalError> {
    let skip = usize::try_from(start_seq)
        .unwrap_or(usize::MAX)
        .min(frames.len());
    let suffix = &frames[skip..];
    let chunk = chunk.max(1);
    for batch in suffix.chunks(chunk) {
        let requests: Vec<QuoteRequest> = batch.iter().map(|f| f.request.clone()).collect();
        service.quote_batch(&requests)?;
    }
    Ok(suffix.len() as u64)
}

/// Reconstructs service state from a journal: scans and validates every
/// frame, optionally restores a [`StateSnapshot`] (validated against the
/// service's policy fingerprint, geometry and the journal length), then
/// re-quotes the journal suffix in admission order.
///
/// Because the serving layer is deterministic and batch-slicing invariant,
/// the resulting state is *byte-identical* to the state the original
/// process held after admitting the same prefix — the returned
/// [`ReplayReport::state_digest`] is the witness.
///
/// With `snapshot = None` the journal is replayed from the beginning; the
/// caller should pass a freshly built service (replay applies *on top of*
/// whatever state the service holds).
///
/// # Errors
///
/// Returns the scan's typed errors for journal corruption, the snapshot's
/// validation errors ([`JournalError::PolicyMismatch`],
/// [`JournalError::GeometryMismatch`]),
/// [`JournalError::SnapshotAheadOfJournal`] when the snapshot claims more
/// frames than the journal holds, and [`JournalError::Serve`] when a
/// replayed request is rejected. The service state is unspecified after a
/// mid-replay error — restart replay on a fresh service.
pub fn replay_journal(
    service: &PricingService,
    journal: impl AsRef<Path>,
    snapshot: Option<&StateSnapshot>,
    options: &ReplayOptions,
) -> Result<ReplayReport, JournalError> {
    let scanned = scan_journal(journal, options.mode)?;
    let total_frames = scanned.frames.len() as u64;
    let start_seq = match snapshot {
        Some(snap) => {
            if snap.frames_applied > total_frames {
                return Err(JournalError::SnapshotAheadOfJournal {
                    frames_applied: snap.frames_applied,
                    journal_frames: total_frames,
                });
            }
            snap.restore_into(service)?;
            snap.frames_applied
        }
        None => 0,
    };
    let frames_applied = replay_frames(service, &scanned.frames, start_seq, options.chunk)?;
    Ok(ReplayReport {
        total_frames,
        start_seq,
        frames_applied,
        truncated_tail: scanned.truncated_tail,
        state_digest: service.state_digest(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::JournalWriter;
    use std::path::PathBuf;
    use vtm_rl::env::ActionSpace;
    use vtm_rl::ppo::{PpoAgent, PpoConfig};
    use vtm_rl::snapshot::PolicySnapshot;
    use vtm_serve::ServiceConfig;

    fn policy(seed: u64) -> PolicySnapshot {
        PpoAgent::new(
            PpoConfig::new(4, 1).with_seed(seed),
            ActionSpace::scalar(5.0, 50.0),
        )
        .snapshot()
    }

    fn config() -> ServiceConfig {
        ServiceConfig::new(2, 2)
            .with_shards(4)
            .with_session_capacity(3)
            .with_session_ttl(8)
    }

    fn request(i: u64) -> QuoteRequest {
        QuoteRequest::new(i % 7, vec![(i % 5) as f64 * 0.2, (i % 3) as f64 * 0.3])
    }

    fn temp_journal(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("vtm_replay_{tag}_{}.vtmj", std::process::id()))
    }

    /// Runs a live service that journals every request before quoting it,
    /// capturing a snapshot after `snap_at` requests. Returns the journal
    /// path, the final live digest and the mid-run snapshot.
    fn record(
        tag: &str,
        snap: &PolicySnapshot,
        total: u64,
        snap_at: u64,
    ) -> (PathBuf, u64, StateSnapshot) {
        let live = PricingService::from_snapshot(snap, config()).unwrap();
        let path = temp_journal(tag);
        let mut journal = JournalWriter::create(&path).unwrap();
        let mut mid = None;
        for i in 0..total {
            let req = request(i);
            journal.append(&req).unwrap();
            live.quote_batch(std::slice::from_ref(&req)).unwrap();
            if i + 1 == snap_at {
                mid = Some(StateSnapshot::capture(&live, i + 1));
            }
        }
        journal.sync().unwrap();
        (path, live.state_digest(), mid.expect("snap_at <= total"))
    }

    #[test]
    fn replay_from_genesis_and_from_snapshot_reach_the_live_digest() {
        let snap = policy(31);
        let (path, live_digest, mid) = record("genesis", &snap, 40, 17);

        // From genesis, with a chunk size that does not divide the total.
        let fresh = PricingService::from_snapshot(&snap, config()).unwrap();
        let opts = ReplayOptions {
            chunk: 7,
            ..ReplayOptions::default()
        };
        let report = replay_journal(&fresh, &path, None, &opts).unwrap();
        assert_eq!(report.total_frames, 40);
        assert_eq!(report.start_seq, 0);
        assert_eq!(report.frames_applied, 40);
        assert_eq!(report.truncated_tail, 0);
        assert_eq!(report.state_digest, live_digest);
        assert_eq!(fresh.state_digest(), live_digest);

        // From the mid-run snapshot: only the suffix is re-quoted, the
        // digest is identical.
        let resumed = PricingService::from_snapshot(&snap, config()).unwrap();
        let report =
            replay_journal(&resumed, &path, Some(&mid), &ReplayOptions::default()).unwrap();
        assert_eq!(report.start_seq, 17);
        assert_eq!(report.frames_applied, 23);
        assert_eq!(report.state_digest, live_digest);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replay_recovers_across_a_torn_tail() {
        let snap = policy(32);
        let (path, _, _) = record("torn", &snap, 10, 5);
        // Crash mid-write of an 11th frame: append half a frame of garbage
        // that starts like a real header.
        let mut bytes = std::fs::read(&path).unwrap();
        let full = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&full[..20]);
        std::fs::write(&path, &bytes).unwrap();

        // The reference digest: 10 requests applied directly.
        let reference = PricingService::from_snapshot(&snap, config()).unwrap();
        let reqs: Vec<QuoteRequest> = (0..10).map(request).collect();
        reference.quote_batch(&reqs).unwrap();

        let fresh = PricingService::from_snapshot(&snap, config()).unwrap();
        let report = replay_journal(&fresh, &path, None, &ReplayOptions::default()).unwrap();
        assert_eq!(report.total_frames, 10);
        assert_eq!(report.truncated_tail, 20);
        assert_eq!(report.state_digest, reference.state_digest());

        // Strict mode refuses the same journal.
        let strict = ReplayOptions {
            mode: ScanMode::Strict,
            ..ReplayOptions::default()
        };
        let fresh = PricingService::from_snapshot(&snap, config()).unwrap();
        assert!(matches!(
            replay_journal(&fresh, &path, None, &strict),
            Err(JournalError::Frame { index: 10, .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn snapshot_ahead_of_journal_is_rejected() {
        let snap = policy(33);
        let (path, _, _) = record("ahead", &snap, 6, 3);
        let live = PricingService::from_snapshot(&snap, config()).unwrap();
        let reqs: Vec<QuoteRequest> = (0..6).map(request).collect();
        live.quote_batch(&reqs).unwrap();
        let overreaching = StateSnapshot::capture(&live, 99);
        let fresh = PricingService::from_snapshot(&snap, config()).unwrap();
        assert!(matches!(
            replay_journal(
                &fresh,
                &path,
                Some(&overreaching),
                &ReplayOptions::default()
            ),
            Err(JournalError::SnapshotAheadOfJournal {
                frames_applied: 99,
                journal_frames: 6
            })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replayed_requests_with_wrong_geometry_are_serve_errors() {
        let snap = policy(34);
        let path = temp_journal("badgeom");
        let mut journal = JournalWriter::create(&path).unwrap();
        journal
            .append(&QuoteRequest::new(1, vec![0.1, 0.2, 0.3]))
            .unwrap();
        journal.sync().unwrap();
        let service = PricingService::from_snapshot(&snap, config()).unwrap();
        assert!(matches!(
            replay_journal(&service, &path, None, &ReplayOptions::default()),
            Err(JournalError::Serve(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
