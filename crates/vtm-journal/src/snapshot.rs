//! Point-in-time service-state snapshots taken at journal frame boundaries.

use std::path::{Path, PathBuf};

use vtm_nn::codec::{
    fnv1a, CodecError, PayloadReader, PayloadWriter, WeightCodec, KIND_STATE_SNAPSHOT,
};
use vtm_serve::PricingService;

use crate::error::JournalError;

/// A captured [`PricingService`] state plus everything needed to validate
/// that restoring it is sound: the policy-version fingerprint it was served
/// under, the service geometry, and the journal position (`frames_applied`)
/// it is consistent with. Replay restores the snapshot and then re-applies
/// only the journal suffix `frames_applied..`.
#[derive(Debug, Clone, PartialEq)]
pub struct StateSnapshot {
    /// FNV-1a fingerprint of the policy snapshot the service was built from
    /// (see [`PricingService::policy_fingerprint`]).
    pub policy_fingerprint: u64,
    /// Journal frames already applied when the snapshot was captured — the
    /// snapshot is byte-identical to replaying exactly this prefix.
    pub frames_applied: u64,
    /// The service's configured observation history length `L`.
    pub history_length: u64,
    /// The service's configured feature-block width per round.
    pub features_per_round: u64,
    /// The service's configured session-shard count.
    pub shards: u64,
    /// The canonical service-state payload from
    /// [`PricingService::save_state`].
    pub state: Vec<u8>,
}

impl StateSnapshot {
    /// Captures the service's current state, tagged as consistent with
    /// `frames_applied` journal frames. The caller must quiesce quoting
    /// while capturing if that tag has to be exact.
    pub fn capture(service: &PricingService, frames_applied: u64) -> Self {
        let config = service.config();
        Self {
            policy_fingerprint: service.policy_fingerprint(),
            frames_applied,
            history_length: config.history_length as u64,
            features_per_round: config.features_per_round as u64,
            shards: config.shards as u64,
            state: service.save_state(),
        }
    }

    /// Restores the captured state into `service`, first validating that the
    /// snapshot belongs to the same policy version and service geometry.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::PolicyMismatch`] /
    /// [`JournalError::GeometryMismatch`] when the snapshot belongs to a
    /// different policy or configuration, and [`JournalError::Serve`] when
    /// the state payload itself is corrupt. The service is left unchanged
    /// on every error path.
    pub fn restore_into(&self, service: &PricingService) -> Result<(), JournalError> {
        if self.policy_fingerprint != service.policy_fingerprint() {
            return Err(JournalError::PolicyMismatch {
                expected: service.policy_fingerprint(),
                found: self.policy_fingerprint,
            });
        }
        let config = service.config();
        let geometry = [
            (
                "history length",
                self.history_length,
                config.history_length as u64,
            ),
            (
                "feature width",
                self.features_per_round,
                config.features_per_round as u64,
            ),
            ("shard count", self.shards, config.shards as u64),
        ];
        for (what, snapshot, service_value) in geometry {
            if snapshot != service_value {
                return Err(JournalError::GeometryMismatch {
                    what,
                    snapshot,
                    service: service_value,
                });
            }
        }
        service.restore_state(&self.state)?;
        Ok(())
    }

    /// FNV-1a digest of the captured state payload — equals
    /// [`PricingService::state_digest`] at capture time.
    pub fn state_digest(&self) -> u64 {
        fnv1a(&self.state)
    }

    /// Serializes the snapshot into a checksummed `VTMW` container of kind
    /// [`KIND_STATE_SNAPSHOT`].
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        w.write_u64(self.policy_fingerprint);
        w.write_u64(self.frames_applied);
        w.write_u64(self.history_length);
        w.write_u64(self.features_per_round);
        w.write_u64(self.shards);
        w.write_bytes(&self.state);
        WeightCodec::encode(KIND_STATE_SNAPSHOT, w.as_bytes())
    }

    /// Decodes a snapshot container written by [`StateSnapshot::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Snapshot`] for corrupt, truncated or
    /// wrong-kind containers — never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, JournalError> {
        let payload =
            WeightCodec::decode(bytes, KIND_STATE_SNAPSHOT).map_err(JournalError::Snapshot)?;
        let mut r = PayloadReader::new(payload);
        let parse = |r: &mut PayloadReader<'_>| -> Result<Self, CodecError> {
            let policy_fingerprint = r.read_u64()?;
            let frames_applied = r.read_u64()?;
            let history_length = r.read_u64()?;
            let features_per_round = r.read_u64()?;
            let shards = r.read_u64()?;
            let state = r.read_bytes()?.to_vec();
            if !r.is_exhausted() {
                return Err(CodecError::Invalid(format!(
                    "{} trailing bytes after state snapshot",
                    r.remaining()
                )));
            }
            Ok(Self {
                policy_fingerprint,
                frames_applied,
                history_length,
                features_per_round,
                shards,
                state,
            })
        };
        parse(&mut r).map_err(JournalError::Snapshot)
    }

    /// Writes the snapshot container to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] when the file cannot be written.
    pub fn save_to(&self, path: impl AsRef<Path>) -> Result<(), JournalError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads and validates a snapshot container from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] when the file cannot be read and
    /// [`JournalError::Snapshot`] when its contents are corrupt.
    pub fn load_from(path: impl AsRef<Path>) -> Result<Self, JournalError> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }
}

/// The canonical sibling path for a snapshot taken after `frames_applied`
/// journal frames: `<journal>.snap.<frames_applied>`.
pub fn snapshot_path(journal: &Path, frames_applied: u64) -> PathBuf {
    let mut name = journal.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".snap.{frames_applied}"));
    journal.with_file_name(name)
}

/// Lists the `(frames_applied, path)` of every sibling snapshot of
/// `journal`, sorted ascending by frame count. Files whose suffix is not a
/// number are ignored; a missing parent directory yields an empty list.
pub fn find_snapshots(journal: &Path) -> Vec<(u64, PathBuf)> {
    let Some(stem) = journal.file_name().map(|n| {
        let mut s = n.to_os_string();
        s.push(".snap.");
        s.to_string_lossy().into_owned()
    }) else {
        return Vec::new();
    };
    let dir = journal.parent().filter(|p| !p.as_os_str().is_empty());
    let Ok(entries) = std::fs::read_dir(dir.unwrap_or(Path::new("."))) else {
        return Vec::new();
    };
    let mut found: Vec<(u64, PathBuf)> = entries
        .filter_map(Result::ok)
        .filter_map(|entry| {
            let name = entry.file_name().to_string_lossy().into_owned();
            let frames: u64 = name.strip_prefix(&stem)?.parse().ok()?;
            Some((frames, entry.path()))
        })
        .collect();
    found.sort_by_key(|(frames, _)| *frames);
    found
}

/// The sibling snapshot of `journal` with the highest frame count, if any.
pub fn find_latest_snapshot(journal: &Path) -> Option<(u64, PathBuf)> {
    find_snapshots(journal).pop()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtm_rl::env::ActionSpace;
    use vtm_rl::ppo::{PpoAgent, PpoConfig};
    use vtm_rl::snapshot::PolicySnapshot;
    use vtm_serve::{QuoteRequest, ServiceConfig};

    fn policy(obs_dim: usize, seed: u64) -> PolicySnapshot {
        PpoAgent::new(
            PpoConfig::new(obs_dim, 1).with_seed(seed),
            ActionSpace::scalar(5.0, 50.0),
        )
        .snapshot()
    }

    fn serve_some(service: &PricingService, rounds: u64) {
        for round in 0..rounds {
            let reqs: Vec<QuoteRequest> = (0..4)
                .map(|s| QuoteRequest::new(s, vec![round as f64 * 0.1, 0.5]))
                .collect();
            service.quote_batch(&reqs).unwrap();
        }
    }

    #[test]
    fn capture_restore_round_trips_through_bytes() {
        let snap = policy(4, 21);
        let config = ServiceConfig::new(2, 2).with_shards(4);
        let source = PricingService::from_snapshot(&snap, config).unwrap();
        serve_some(&source, 3);

        let captured = StateSnapshot::capture(&source, 12);
        assert_eq!(captured.frames_applied, 12);
        assert_eq!(captured.state_digest(), source.state_digest());

        let decoded = StateSnapshot::from_bytes(&captured.to_bytes()).unwrap();
        assert_eq!(decoded, captured);

        let target = PricingService::from_snapshot(&snap, config).unwrap();
        decoded.restore_into(&target).unwrap();
        assert_eq!(target.state_digest(), source.state_digest());
    }

    #[test]
    fn file_round_trip_and_corruption_errors() {
        let snap = policy(4, 22);
        let service = PricingService::from_snapshot(&snap, ServiceConfig::new(2, 2)).unwrap();
        serve_some(&service, 2);
        let captured = StateSnapshot::capture(&service, 8);
        let path = std::env::temp_dir().join(format!(
            "vtm_journal_snapshot_file_{}.snap.8",
            std::process::id()
        ));
        captured.save_to(&path).unwrap();
        assert_eq!(StateSnapshot::load_from(&path).unwrap(), captured);

        // Flip one byte inside the container: checksum mismatch.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            StateSnapshot::from_bytes(&bytes),
            Err(JournalError::Snapshot(_))
        ));
        // Truncation is also typed.
        assert!(matches!(
            StateSnapshot::from_bytes(&bytes[..bytes.len() - 9]),
            Err(JournalError::Snapshot(CodecError::Truncated { .. }))
        ));
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            StateSnapshot::load_from(&path),
            Err(JournalError::Io(_))
        ));
    }

    #[test]
    fn restore_refuses_wrong_policy_and_geometry() {
        let config = ServiceConfig::new(2, 2);
        let source = PricingService::from_snapshot(&policy(4, 23), config).unwrap();
        serve_some(&source, 2);
        let captured = StateSnapshot::capture(&source, 8);

        // Different policy weights, same geometry.
        let other_policy = PricingService::from_snapshot(&policy(4, 24), config).unwrap();
        assert!(matches!(
            captured.restore_into(&other_policy),
            Err(JournalError::PolicyMismatch { .. })
        ));
        // Same policy, different shard count.
        let other_shards =
            PricingService::from_snapshot(&policy(4, 23), config.with_shards(4)).unwrap();
        assert!(matches!(
            captured.restore_into(&other_shards),
            Err(JournalError::GeometryMismatch {
                what: "shard count",
                ..
            })
        ));
        // A failed restore leaves the target untouched.
        let digest_before = other_shards.state_digest();
        let _ = captured.restore_into(&other_shards);
        assert_eq!(other_shards.state_digest(), digest_before);
    }

    #[test]
    fn snapshot_discovery_sorts_numerically() {
        let dir =
            std::env::temp_dir().join(format!("vtm_journal_snap_discovery_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("requests.vtmj");
        std::fs::write(&journal, b"").unwrap();
        // 9 vs 10: numeric order must win over lexicographic order.
        for frames in [10u64, 2, 9] {
            std::fs::write(snapshot_path(&journal, frames), b"x").unwrap();
        }
        // Distractors that must be ignored.
        std::fs::write(dir.join("requests.vtmj.snap.notanumber"), b"x").unwrap();
        std::fs::write(dir.join("other.vtmj.snap.99"), b"x").unwrap();

        let found = find_snapshots(&journal);
        let frames: Vec<u64> = found.iter().map(|(f, _)| *f).collect();
        assert_eq!(frames, vec![2, 9, 10]);
        let (latest, latest_path) = find_latest_snapshot(&journal).unwrap();
        assert_eq!(latest, 10);
        assert_eq!(latest_path, snapshot_path(&journal, 10));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
