//! The append-only request journal: writer and scanners.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use vtm_nn::codec::{CodecError, PayloadReader, PayloadWriter, WeightCodec, KIND_JOURNAL_FRAME};
use vtm_serve::QuoteRequest;

use crate::error::JournalError;

/// Journaling configuration a host (e.g. the gateway) opens a
/// [`JournalWriter`] from: where the journal lives, how eagerly frames are
/// flushed, and how often a state snapshot should be taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalOptions {
    /// Journal file path (snapshots are written next to it as
    /// `<path>.snap.<frames>`).
    pub path: PathBuf,
    /// Appends per automatic userspace flush (`0` = flush only explicitly,
    /// `1` = flush after every append; see
    /// [`JournalWriter::with_flush_every`]).
    pub flush_every: u64,
    /// Take a state snapshot every this many processed requests
    /// (`0` = never). Snapshots bound replay time after a crash: recovery
    /// restores the latest snapshot and re-quotes only the journal suffix.
    pub snapshot_every: u64,
}

impl JournalOptions {
    /// Options journaling to `path`, flushing every append, no snapshots.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            flush_every: 1,
            snapshot_every: 0,
        }
    }

    /// Overrides the appends-per-flush cadence.
    pub fn with_flush_every(mut self, appends: u64) -> Self {
        self.flush_every = appends;
        self
    }

    /// Overrides the snapshot cadence (`0` = never).
    pub fn with_snapshot_every(mut self, requests: u64) -> Self {
        self.snapshot_every = requests;
        self
    }

    /// Creates the fresh journal these options describe.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] when the file cannot be created.
    pub fn open(&self) -> Result<JournalWriter, JournalError> {
        Ok(JournalWriter::create(&self.path)?.with_flush_every(self.flush_every))
    }
}

/// One journaled admission: the request plus its zero-based sequence number
/// (which must equal the frame's position in the file).
#[derive(Debug, Clone, PartialEq)]
pub struct JournalFrame {
    /// Zero-based admission sequence number.
    pub seq: u64,
    /// The admitted quote request, bit-exact as submitted.
    pub request: QuoteRequest,
}

impl JournalFrame {
    /// Encodes the frame payload (seq, session, features).
    fn payload(seq: u64, request: &QuoteRequest) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        w.write_u64(seq);
        w.write_u64(request.session);
        w.write_f64_vec(&request.features);
        w.into_bytes()
    }

    /// Decodes a frame payload produced by [`JournalFrame::payload`].
    fn from_payload(payload: &[u8]) -> Result<Self, CodecError> {
        let mut r = PayloadReader::new(payload);
        let seq = r.read_u64()?;
        let session = r.read_u64()?;
        let features = r.read_f64_vec()?;
        if !r.is_exhausted() {
            return Err(CodecError::Invalid(format!(
                "{} trailing bytes after journal frame",
                r.remaining()
            )));
        }
        Ok(Self {
            seq,
            request: QuoteRequest::new(session, features),
        })
    }

    /// The exact on-disk size of a frame for a request with
    /// `features` feature values: container framing plus the
    /// seq/session/feature-count words and the raw `f64` features.
    pub fn framed_len(features: usize) -> usize {
        WeightCodec::framed_len(8 + 8 + 8 + 8 * features)
    }
}

/// Append-only writer for a request journal. Frames are buffered through a
/// [`BufWriter`]; [`JournalWriter::flush`] pushes them to the OS (cheap,
/// bounds loss to in-kernel buffers) and [`JournalWriter::sync`] forces them
/// to stable storage (crash-durable).
#[derive(Debug)]
pub struct JournalWriter {
    file: BufWriter<File>,
    path: PathBuf,
    next_seq: u64,
    bytes_written: u64,
    appends_since_flush: u64,
    flush_every: u64,
    appends_timed: u64,
    append_sum_us: u64,
    append_max_us: u64,
}

/// Cumulative wall-clock cost of [`JournalWriter::append`] calls, measured
/// inside the writer (encode + buffered write + any automatic flush) so
/// hosts can report journal overhead without instrumenting their own call
/// sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AppendLatency {
    /// Appends measured by this writer instance.
    pub appends: u64,
    /// Total time spent appending (µs).
    pub sum_us: u64,
    /// Slowest single append (µs).
    pub max_us: u64,
}

impl AppendLatency {
    /// Mean append cost (µs); 0.0 — never NaN — before the first append.
    pub fn mean_us(&self) -> f64 {
        if self.appends == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.appends as f64
        }
    }
}

impl JournalWriter {
    /// Creates (or truncates) a journal at `path` and starts at sequence 0.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] when the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, JournalError> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(Self {
            file: BufWriter::new(file),
            path,
            next_seq: 0,
            bytes_written: 0,
            appends_since_flush: 0,
            flush_every: 1,
            appends_timed: 0,
            append_sum_us: 0,
            append_max_us: 0,
        })
    }

    /// Opens an existing journal for appending, first truncating any torn
    /// partial frame a crash left at the tail. The writer resumes at the
    /// sequence number after the last complete frame.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] on i/o failures, or the scan's typed
    /// error when the journal body (not just its tail) is corrupt.
    pub fn recover(path: impl AsRef<Path>) -> Result<Self, JournalError> {
        let path = path.as_ref().to_path_buf();
        let scanned = scan_journal(&path, ScanMode::RecoverTail)?;
        let valid_len = scanned.bytes_total - scanned.truncated_tail;
        let mut file = OpenOptions::new().write(true).open(&path)?;
        file.set_len(valid_len)?;
        file.seek(SeekFrom::End(0))?;
        Ok(Self {
            file: BufWriter::new(file),
            path,
            next_seq: scanned.frames.len() as u64,
            bytes_written: valid_len,
            appends_since_flush: 0,
            flush_every: 1,
            appends_timed: 0,
            append_sum_us: 0,
            append_max_us: 0,
        })
    }

    /// Sets how many appends may accumulate in the userspace buffer before
    /// an automatic [`JournalWriter::flush`] (`0` = only flush explicitly,
    /// default `1` = flush after every append).
    pub fn with_flush_every(mut self, appends: u64) -> Self {
        self.flush_every = appends;
        self
    }

    /// Appends one admitted request and returns its sequence number.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] when the write fails.
    pub fn append(&mut self, request: &QuoteRequest) -> Result<u64, JournalError> {
        let started = Instant::now();
        let seq = self.next_seq;
        let frame = WeightCodec::encode(KIND_JOURNAL_FRAME, &JournalFrame::payload(seq, request));
        self.file.write_all(&frame)?;
        self.next_seq += 1;
        self.bytes_written += frame.len() as u64;
        self.appends_since_flush += 1;
        if self.flush_every > 0 && self.appends_since_flush >= self.flush_every {
            self.flush()?;
        }
        let elapsed_us = started.elapsed().as_micros() as u64;
        self.appends_timed += 1;
        self.append_sum_us += elapsed_us;
        self.append_max_us = self.append_max_us.max(elapsed_us);
        Ok(seq)
    }

    /// Cumulative append-path wall-clock cost of the appends *this writer
    /// instance* performed (a recovered writer does not claim the cost of
    /// frames written before the crash); see [`AppendLatency`].
    pub fn append_latency(&self) -> AppendLatency {
        AppendLatency {
            appends: self.appends_timed,
            sum_us: self.append_sum_us,
            max_us: self.append_max_us,
        }
    }

    /// Flushes buffered frames to the operating system.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] when the flush fails.
    pub fn flush(&mut self) -> Result<(), JournalError> {
        self.file.flush()?;
        self.appends_since_flush = 0;
        Ok(())
    }

    /// Flushes and then forces the journal to stable storage (`fsync`).
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] when the flush or sync fails.
    pub fn sync(&mut self) -> Result<(), JournalError> {
        self.flush()?;
        self.file.get_ref().sync_all()?;
        Ok(())
    }

    /// Frames appended so far (equivalently: the next sequence number).
    pub fn frames(&self) -> u64 {
        self.next_seq
    }

    /// Total bytes appended so far (including container framing).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// How a scanner treats an incomplete trailing frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanMode {
    /// Any anomaly — including a truncated tail — is an error naming the
    /// offending frame. Use for integrity audits, where a short file means
    /// data loss, not a crash artifact.
    Strict,
    /// A frame cut short at the end of the file is treated as a torn write
    /// from a crash: every complete frame is returned and the torn tail's
    /// byte count is reported. Mid-file corruption is still an error.
    RecoverTail,
}

/// The result of scanning a journal.
#[derive(Debug, Clone, PartialEq)]
pub struct ScannedJournal {
    /// Every complete, checksum-valid frame in admission order.
    pub frames: Vec<JournalFrame>,
    /// Bytes of torn partial frame at the tail (always `0` in
    /// [`ScanMode::Strict`], which errors instead).
    pub truncated_tail: u64,
    /// Total bytes in the scanned input, torn tail included.
    pub bytes_total: u64,
}

/// Reads and validates a journal file. See [`scan_journal_bytes`].
///
/// # Errors
///
/// Returns [`JournalError::Io`] when the file cannot be read, plus every
/// error [`scan_journal_bytes`] reports.
pub fn scan_journal(
    path: impl AsRef<Path>,
    mode: ScanMode,
) -> Result<ScannedJournal, JournalError> {
    let bytes = std::fs::read(path)?;
    scan_journal_bytes(&bytes, mode)
}

/// Validates a journal byte stream frame by frame: container framing,
/// checksum and payload structure of every frame, plus the invariant that
/// frame `i` carries sequence number `i`.
///
/// # Errors
///
/// Returns [`JournalError::Frame`] (with the exact frame index) for any
/// corrupt frame, [`JournalError::SequenceGap`] for a reordered or spliced
/// journal. In [`ScanMode::Strict`], a truncated trailing frame is also a
/// [`JournalError::Frame`]; in [`ScanMode::RecoverTail`] it ends the scan
/// and is reported via [`ScannedJournal::truncated_tail`].
pub fn scan_journal_bytes(bytes: &[u8], mode: ScanMode) -> Result<ScannedJournal, JournalError> {
    let mut frames = Vec::new();
    let mut offset = 0usize;
    let mut truncated_tail = 0u64;
    while offset < bytes.len() {
        let index = frames.len();
        match WeightCodec::decode_prefix(&bytes[offset..], KIND_JOURNAL_FRAME) {
            Ok((payload, consumed)) => {
                let frame = JournalFrame::from_payload(payload)
                    .map_err(|source| JournalError::Frame { index, source })?;
                let expected = index as u64;
                if frame.seq != expected {
                    return Err(JournalError::SequenceGap {
                        index,
                        expected,
                        found: frame.seq,
                    });
                }
                frames.push(frame);
                offset += consumed;
            }
            Err(CodecError::Truncated { .. }) if mode == ScanMode::RecoverTail => {
                // The stream ends (or a corrupted length field points) past
                // the end of the file: everything before this frame is
                // intact, so recover to here and report the torn tail.
                truncated_tail = (bytes.len() - offset) as u64;
                break;
            }
            Err(source) => return Err(JournalError::Frame { index, source }),
        }
    }
    Ok(ScannedJournal {
        frames,
        truncated_tail,
        bytes_total: bytes.len() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("vtm_journal_{tag}_{}.vtmj", std::process::id()))
    }

    fn request(round: u64) -> QuoteRequest {
        QuoteRequest::new(round % 3, vec![round as f64 * 0.5, -1.25])
    }

    #[test]
    fn append_scan_round_trip_is_bit_exact() {
        let path = temp_path("round_trip");
        let mut journal = JournalWriter::create(&path).unwrap();
        for round in 0..5 {
            assert_eq!(journal.append(&request(round)).unwrap(), round);
        }
        journal.sync().unwrap();
        assert_eq!(journal.frames(), 5);
        assert_eq!(
            journal.bytes_written(),
            5 * JournalFrame::framed_len(2) as u64
        );
        assert_eq!(journal.path(), path.as_path());

        let scanned = scan_journal(&path, ScanMode::Strict).unwrap();
        assert_eq!(scanned.frames.len(), 5);
        assert_eq!(scanned.truncated_tail, 0);
        assert_eq!(scanned.bytes_total, journal.bytes_written());
        for (i, frame) in scanned.frames.iter().enumerate() {
            assert_eq!(frame.seq, i as u64);
            assert_eq!(frame.request, request(i as u64));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn recover_truncates_torn_tail_and_resumes_sequence() {
        let path = temp_path("recover");
        let mut journal = JournalWriter::create(&path).unwrap();
        for round in 0..4 {
            journal.append(&request(round)).unwrap();
        }
        journal.sync().unwrap();
        drop(journal);
        // Simulate a crash mid-write: chop 5 bytes off the last frame.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let scanned = scan_journal(&path, ScanMode::RecoverTail).unwrap();
        assert_eq!(scanned.frames.len(), 3);
        assert_eq!(
            scanned.truncated_tail,
            JournalFrame::framed_len(2) as u64 - 5
        );
        // Strict mode reports the same tail as a frame error instead.
        assert!(matches!(
            scan_journal(&path, ScanMode::Strict),
            Err(JournalError::Frame {
                index: 3,
                source: CodecError::Truncated { .. }
            })
        ));

        // Recovery drops the torn frame and resumes at seq 3.
        let mut recovered = JournalWriter::recover(&path).unwrap();
        assert_eq!(recovered.frames(), 3);
        assert_eq!(recovered.append(&request(9)).unwrap(), 3);
        recovered.sync().unwrap();
        let scanned = scan_journal(&path, ScanMode::Strict).unwrap();
        assert_eq!(scanned.frames.len(), 4);
        assert_eq!(scanned.frames[3].request, request(9));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_is_a_typed_error_with_the_frame_index() {
        let mut bytes = Vec::new();
        for round in 0..3 {
            bytes.extend_from_slice(&WeightCodec::encode(
                KIND_JOURNAL_FRAME,
                &JournalFrame::payload(round, &request(round)),
            ));
        }
        let frame_len = JournalFrame::framed_len(2);
        // Flip a payload byte inside frame 1: checksum mismatch at index 1.
        let mut corrupt = bytes.clone();
        corrupt[frame_len + 20] ^= 0xFF;
        assert!(matches!(
            scan_journal_bytes(&corrupt, ScanMode::Strict),
            Err(JournalError::Frame {
                index: 1,
                source: CodecError::ChecksumMismatch { .. }
            })
        ));
        // RecoverTail only forgives *tail* truncation, not mid-file damage.
        assert!(matches!(
            scan_journal_bytes(&corrupt, ScanMode::RecoverTail),
            Err(JournalError::Frame { index: 1, .. })
        ));
        // Break the magic of frame 2.
        let mut corrupt = bytes.clone();
        corrupt[2 * frame_len] = b'X';
        assert!(matches!(
            scan_journal_bytes(&corrupt, ScanMode::Strict),
            Err(JournalError::Frame {
                index: 2,
                source: CodecError::BadMagic { .. }
            })
        ));
        // An empty journal is valid and holds no frames.
        let scanned = scan_journal_bytes(&[], ScanMode::Strict).unwrap();
        assert!(scanned.frames.is_empty());
        assert_eq!(scanned.bytes_total, 0);
    }

    #[test]
    fn spliced_journals_are_rejected_as_sequence_gaps() {
        // A journal whose frames were reordered passes every checksum but
        // violates the seq == position invariant.
        let frame = |seq| {
            WeightCodec::encode(
                KIND_JOURNAL_FRAME,
                &JournalFrame::payload(seq, &request(seq)),
            )
        };
        let mut spliced = Vec::new();
        spliced.extend_from_slice(&frame(0));
        spliced.extend_from_slice(&frame(2));
        assert!(matches!(
            scan_journal_bytes(&spliced, ScanMode::Strict),
            Err(JournalError::SequenceGap {
                index: 1,
                expected: 1,
                found: 2
            })
        ));
    }

    #[test]
    fn flush_every_batches_userspace_flushes() {
        let path = temp_path("flush_every");
        let mut journal = JournalWriter::create(&path).unwrap().with_flush_every(0);
        for round in 0..3 {
            journal.append(&request(round)).unwrap();
        }
        // Nothing flushed yet: the file on disk is still empty.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        journal.flush().unwrap();
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            journal.bytes_written()
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_journal_is_an_io_error() {
        let path = temp_path("missing_nonexistent");
        assert!(matches!(
            scan_journal(&path, ScanMode::Strict),
            Err(JournalError::Io(_))
        ));
        assert!(matches!(
            JournalWriter::recover(&path),
            Err(JournalError::Io(_))
        ));
    }
}
