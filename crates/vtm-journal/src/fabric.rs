//! Per-shard journal naming and fabric-level replay.
//!
//! A sharded gateway fabric journals each shard independently — admission
//! order is only defined *within* a shard, so one global journal would
//! invent an ordering that never existed. This module pins the naming
//! contract relating a fabric's journal *base path* to its per-shard
//! files, and provides a fabric-level replay that restores every shard
//! and folds the per-shard state digests into one fabric digest.
//!
//! Naming: shard `k` of base `fab.vtmj` journals to `fab.shard<k>.vtmj`
//! (the tag is inserted before the extension, appended when there is
//! none). Because routing is a pure function of `(session, shard_count)`
//! (see `vtm_core::routing::session_shard`), a restart with the same
//! shard count replays each shard file into the exact per-session state
//! that shard held — per-session state never crosses files.

use std::path::{Path, PathBuf};

use vtm_nn::codec::fnv1a;
use vtm_serve::PricingService;

use crate::error::JournalError;
use crate::replay::{replay_journal, ReplayOptions, ReplayReport};

/// Inserts `tag` into `base`'s file name, before the extension:
/// `fab.vtmj` + `"a"` → `fab.a.vtmj`; extension-less `fab` → `fab.a`.
///
/// The building block for per-shard (and per-arm) journal naming; tags must
/// not contain `.` or path separators for the mapping to stay invertible.
pub fn tagged_journal_path(base: &Path, tag: &str) -> PathBuf {
    let stem = base
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    let name = match base.extension() {
        Some(ext) => format!("{stem}.{tag}.{}", ext.to_string_lossy()),
        None => format!("{stem}.{tag}"),
    };
    base.with_file_name(name)
}

/// The canonical journal path of fabric shard `shard` under `base`:
/// [`tagged_journal_path`] with tag `shard<k>`.
pub fn shard_journal_path(base: &Path, shard: usize) -> PathBuf {
    tagged_journal_path(base, &format!("shard{shard}"))
}

/// The canonical per-shard journal paths of a `shards`-wide fabric.
pub fn shard_journal_paths(base: &Path, shards: usize) -> Vec<PathBuf> {
    (0..shards).map(|k| shard_journal_path(base, k)).collect()
}

/// Folds ordered per-shard state digests into one fabric-level digest:
/// FNV-1a over the little-endian digest words, shard 0 first.
///
/// Order-sensitive on purpose — shard identity is part of the fabric state
/// (swapping two shards' states is a different fabric).
pub fn combine_shard_digests(digests: &[u64]) -> u64 {
    let bytes: Vec<u8> = digests.iter().flat_map(|d| d.to_le_bytes()).collect();
    fnv1a(&bytes)
}

/// What a fabric-level replay reconstructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricReplayReport {
    /// Per-shard replay reports, indexed by shard.
    pub shards: Vec<ReplayReport>,
    /// [`combine_shard_digests`] over the per-shard `state_digest`s.
    pub merged_digest: u64,
}

impl FabricReplayReport {
    /// Total complete frames across all shard journals.
    pub fn total_frames(&self) -> u64 {
        self.shards.iter().map(|r| r.total_frames).sum()
    }
}

/// Replays every shard journal of a fabric from genesis: shard `k`'s file
/// ([`shard_journal_path`]`(base, k)`) is replayed into `services[k]`, and
/// the resulting per-shard digests are merged with
/// [`combine_shard_digests`].
///
/// The services must be fresh (state-free) and built from the same policy
/// snapshot and service configuration the fabric ran with; then each
/// shard's digest is byte-identical to the state that shard held live, and
/// `merged_digest` identifies the whole fabric state.
///
/// # Errors
///
/// Any per-shard [`replay_journal`] error, with the remaining shards left
/// unreplayed. A shard's service state is unspecified after a mid-replay
/// error — restart from fresh services.
pub fn replay_fabric(
    services: &[&PricingService],
    base: &Path,
    options: &ReplayOptions,
) -> Result<FabricReplayReport, JournalError> {
    let mut shards = Vec::with_capacity(services.len());
    for (shard, service) in services.iter().enumerate() {
        shards.push(replay_journal(
            service,
            shard_journal_path(base, shard),
            None,
            options,
        )?);
    }
    let digests: Vec<u64> = shards.iter().map(|r| r.state_digest).collect();
    Ok(FabricReplayReport {
        merged_digest: combine_shard_digests(&digests),
        shards,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::JournalWriter;
    use vtm_core::routing::session_shard;
    use vtm_rl::env::ActionSpace;
    use vtm_rl::ppo::{PpoAgent, PpoConfig};
    use vtm_serve::{QuoteRequest, ServiceConfig};

    #[test]
    fn naming_inserts_tags_before_the_extension() {
        let base = Path::new("/tmp/fab.vtmj");
        assert_eq!(
            tagged_journal_path(base, "a"),
            PathBuf::from("/tmp/fab.a.vtmj")
        );
        assert_eq!(
            shard_journal_path(base, 3),
            PathBuf::from("/tmp/fab.shard3.vtmj")
        );
        assert_eq!(
            shard_journal_path(Path::new("/tmp/fab"), 0),
            PathBuf::from("/tmp/fab.shard0")
        );
        assert_eq!(
            shard_journal_paths(base, 2),
            vec![
                PathBuf::from("/tmp/fab.shard0.vtmj"),
                PathBuf::from("/tmp/fab.shard1.vtmj"),
            ]
        );
        // Tags compose: per-arm base, then per-shard.
        assert_eq!(
            shard_journal_path(&tagged_journal_path(base, "arm-b"), 1),
            PathBuf::from("/tmp/fab.arm-b.shard1.vtmj")
        );
    }

    #[test]
    fn combine_shard_digests_is_order_sensitive_and_deterministic() {
        let a = combine_shard_digests(&[1, 2]);
        assert_eq!(a, combine_shard_digests(&[1, 2]));
        assert_ne!(a, combine_shard_digests(&[2, 1]));
        assert_ne!(a, combine_shard_digests(&[1, 2, 0]));
    }

    /// Two shard services journal disjoint (routed) traffic; fabric replay
    /// reconstructs both and the merged digest matches the live states.
    #[test]
    fn replay_fabric_reaches_every_live_shard_digest() {
        let snapshot = PpoAgent::new(
            PpoConfig::new(4, 1).with_seed(77),
            ActionSpace::scalar(5.0, 50.0),
        )
        .snapshot();
        let config = ServiceConfig::new(2, 2);
        let shards = 2;
        let base =
            std::env::temp_dir().join(format!("vtm_fabric_replay_{}.vtmj", std::process::id()));

        let live: Vec<PricingService> = (0..shards)
            .map(|_| PricingService::from_snapshot(&snapshot, config).unwrap())
            .collect();
        let mut writers: Vec<JournalWriter> = (0..shards)
            .map(|k| JournalWriter::create(shard_journal_path(&base, k)).unwrap())
            .collect();
        for i in 0..60u64 {
            let req = QuoteRequest::new(i % 11, vec![(i % 5) as f64 * 0.2, (i % 3) as f64 * 0.3]);
            let shard = session_shard(req.session, shards);
            writers[shard].append(&req).unwrap();
            live[shard].quote_batch(std::slice::from_ref(&req)).unwrap();
        }
        for writer in &mut writers {
            writer.sync().unwrap();
        }

        let fresh: Vec<PricingService> = (0..shards)
            .map(|_| PricingService::from_snapshot(&snapshot, config).unwrap())
            .collect();
        let refs: Vec<&PricingService> = fresh.iter().collect();
        let report = replay_fabric(&refs, &base, &ReplayOptions::default()).unwrap();

        let live_digests: Vec<u64> = live.iter().map(|s| s.state_digest()).collect();
        for (shard, shard_report) in report.shards.iter().enumerate() {
            assert_eq!(shard_report.state_digest, live_digests[shard]);
        }
        assert_eq!(report.merged_digest, combine_shard_digests(&live_digests));
        assert_eq!(report.total_frames(), 60);

        for path in shard_journal_paths(&base, shards) {
            let _ = std::fs::remove_file(path);
        }
    }
}
