//! Named environment registry: one place that maps a preset name to a
//! runnable pricing environment.
//!
//! The policy lifecycle spans processes — `experiments train` produces a
//! checkpoint in one invocation, `experiments serve-bench` (or a serving
//! deployment) consumes it in another — so both sides need to agree on what
//! "the highway environment" *is* without sharing in-memory state. The
//! [`EnvRegistry`] provides that agreement: every preset (`static` for the
//! paper's closed-form market, plus the five named [`Scenario`]s) is
//! constructible by name, and [`AnyPricingEnv`] erases the concrete type so
//! the [`Trainer`](vtm_rl::trainer::Trainer) and the serving layer can treat
//! them uniformly.
//!
//! # Example
//!
//! ```
//! use vtm_core::registry::{EnvBuildOptions, EnvRegistry};
//! use vtm_rl::env::Environment;
//!
//! let registry = EnvRegistry::builtin();
//! assert!(registry.names().contains(&"highway"));
//! let mut env = registry
//!     .build("static", &EnvBuildOptions::default())
//!     .unwrap();
//! let obs = env.reset();
//! assert_eq!(obs.len(), env.observation_dim());
//! ```

use vtm_rl::env::{ActionSpace, Environment, Step};

use crate::config::ExperimentConfig;
use crate::env::{EpisodeStats, PricingEnv, RewardMode};
use crate::scenario::{Scenario, ScenarioKind, OBS_FEATURES};
use crate::stackelberg::AotmStackelbergGame;

/// How a registry entry builds its environment.
#[derive(Debug, Clone)]
pub enum EnvSpec {
    /// The paper's static Stackelberg market ([`PricingEnv`]) for a fixed
    /// experiment configuration.
    Static(ExperimentConfig),
    /// A trace-driven scenario ([`crate::scenario::SimPricingEnv`]).
    Scenario(Scenario),
}

impl EnvSpec {
    /// Observation features recorded per history round by this environment
    /// family (the serving layer sizes its per-session state from this).
    pub fn features_per_round(&self) -> usize {
        match self {
            EnvSpec::Static(config) => 1 + config.vmus.len(),
            EnvSpec::Scenario(_) => OBS_FEATURES,
        }
    }
}

/// Episode-shape and seeding options applied when building an environment
/// from a registry entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvBuildOptions {
    /// Observation history length `L`.
    pub history_length: usize,
    /// Rounds per episode `K`.
    pub rounds_per_episode: usize,
    /// Reward definition.
    pub reward_mode: RewardMode,
    /// Environment seed (warm-up rounds, traces).
    pub seed: u64,
}

impl Default for EnvBuildOptions {
    /// The harness defaults: `L = 4`, `K = 40`, the paper's sparse reward,
    /// seed 0.
    fn default() -> Self {
        Self {
            history_length: 4,
            rounds_per_episode: 40,
            reward_mode: RewardMode::Improvement,
            seed: 0,
        }
    }
}

/// A pricing environment of either family behind one concrete type, so
/// registry consumers need no generics over the environment kind. Variants
/// are boxed: the environments differ greatly in size and the enum is moved
/// around by value (replica construction, trainer clones).
#[derive(Debug, Clone)]
pub enum AnyPricingEnv {
    /// The static closed-form market.
    Static(Box<PricingEnv>),
    /// A trace-driven scenario environment.
    Sim(Box<crate::scenario::SimPricingEnv>),
}

impl AnyPricingEnv {
    /// Aggregates over the current episode's completed rounds.
    pub fn episode_stats(&self) -> &EpisodeStats {
        match self {
            AnyPricingEnv::Static(env) => env.episode_stats(),
            AnyPricingEnv::Sim(env) => env.episode_stats(),
        }
    }

    /// Best MSP utility observed so far in the current episode.
    pub fn best_utility(&self) -> f64 {
        match self {
            AnyPricingEnv::Static(env) => env.best_utility(),
            AnyPricingEnv::Sim(env) => env.best_utility(),
        }
    }

    /// Rounds per episode (`K`).
    pub fn rounds_per_episode(&self) -> usize {
        match self {
            AnyPricingEnv::Static(env) => env.rounds_per_episode(),
            AnyPricingEnv::Sim(env) => env.rounds_per_episode(),
        }
    }
}

impl Environment for AnyPricingEnv {
    fn observation_dim(&self) -> usize {
        match self {
            AnyPricingEnv::Static(env) => env.observation_dim(),
            AnyPricingEnv::Sim(env) => env.observation_dim(),
        }
    }

    fn action_space(&self) -> ActionSpace {
        match self {
            AnyPricingEnv::Static(env) => env.action_space(),
            AnyPricingEnv::Sim(env) => env.action_space(),
        }
    }

    fn reset(&mut self) -> Vec<f64> {
        match self {
            AnyPricingEnv::Static(env) => env.reset(),
            AnyPricingEnv::Sim(env) => env.reset(),
        }
    }

    fn reset_with_seed(&mut self, seed: u64) -> Vec<f64> {
        match self {
            AnyPricingEnv::Static(env) => env.reset_with_seed(seed),
            AnyPricingEnv::Sim(env) => env.reset_with_seed(seed),
        }
    }

    fn step(&mut self, action: &[f64]) -> Step {
        match self {
            AnyPricingEnv::Static(env) => env.step(action),
            AnyPricingEnv::Sim(env) => env.step(action),
        }
    }
}

/// One session's newest feature block for one pricing round — the unit of
/// an online request stream. This is the serving-side shape (`vtm-serve`'s
/// `QuoteRequest` carries exactly these two fields), defined here so the
/// environment registry can seed request streams without `vtm-core`
/// depending on the serving crates.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestFrame {
    /// Stable session identifier (the VMU/trip id).
    pub session: u64,
    /// The session's newest round of observation features.
    pub features: Vec<f64>,
}

/// A name → [`EnvSpec`] map with the built-in presets pre-registered.
#[derive(Debug, Clone, Default)]
pub struct EnvRegistry {
    entries: Vec<(String, EnvSpec)>,
}

impl EnvRegistry {
    /// An empty registry (useful for tests and custom harnesses).
    pub fn new() -> Self {
        Self::default()
    }

    /// The built-in presets: `static` (the paper's two-VMU market) plus every
    /// named scenario (`highway`, `urban-grid`, `rush-hour-surge`,
    /// `sparse-rural`, `multi-msp`).
    pub fn builtin() -> Self {
        let mut registry = Self::new();
        registry.register(
            "static",
            EnvSpec::Static(ExperimentConfig::paper_two_vmus()),
        );
        for kind in ScenarioKind::ALL {
            registry.register(kind.name(), EnvSpec::Scenario(Scenario::preset(kind)));
        }
        registry
    }

    /// Registers (or replaces) an entry under `name`.
    pub fn register(&mut self, name: impl Into<String>, spec: EnvSpec) {
        let name = name.into();
        if let Some(entry) = self.entries.iter_mut().find(|(n, _)| *n == name) {
            entry.1 = spec;
        } else {
            self.entries.push((name, spec));
        }
    }

    /// Every registered name, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Looks an entry up by name.
    pub fn get(&self, name: &str) -> Option<&EnvSpec> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, spec)| spec)
    }

    /// Generates a realistic online request stream for the named preset:
    /// `sessions` independently seeded replicas of the environment are
    /// rolled out for `rounds` rounds under the policy-neutral midpoint
    /// price, and each round records every session's *newest* feature
    /// block — exactly what that VMU's client would ship to the serving
    /// layer that round (the serving side keeps the rolling history).
    ///
    /// Episodes that end mid-stream reset and keep producing frames, so the
    /// stream covers any requested length. The result is indexed
    /// `[round][session]`; it is deterministic in `(options.seed, sessions,
    /// rounds)` and `None` for an unknown preset.
    pub fn request_stream(
        &self,
        name: &str,
        options: &EnvBuildOptions,
        sessions: usize,
        rounds: usize,
    ) -> Option<Vec<Vec<RequestFrame>>> {
        let features = self.get(name)?.features_per_round();
        let mut frames: Vec<Vec<RequestFrame>> =
            (0..rounds).map(|_| Vec::with_capacity(sessions)).collect();
        for session in 0..sessions {
            let mut opts = *options;
            // Golden-ratio decorrelation, like the rollout engine's
            // per-replica seed streams.
            opts.seed = options
                .seed
                .wrapping_add((session as u64).wrapping_mul(crate::routing::GOLDEN));
            let mut env = self.build(name, &opts)?;
            // tanh-squash of 0 is the exact midpoint of the action box.
            let midpoint = env
                .action_space()
                .squash(&vec![0.0; env.action_space().dim()]);
            let mut obs = env.reset();
            for frame in frames.iter_mut() {
                frame.push(RequestFrame {
                    session: session as u64,
                    features: obs[obs.len() - features..].to_vec(),
                });
                let step = env.step(&midpoint);
                obs = if step.done {
                    env.reset()
                } else {
                    step.observation
                };
            }
        }
        Some(frames)
    }

    /// Builds the named environment, or `None` for an unknown name.
    pub fn build(&self, name: &str, options: &EnvBuildOptions) -> Option<AnyPricingEnv> {
        Some(match self.get(name)? {
            EnvSpec::Static(config) => {
                let game = AotmStackelbergGame::from_config(config);
                AnyPricingEnv::Static(Box::new(PricingEnv::new(
                    game,
                    options.history_length,
                    options.rounds_per_episode,
                    options.reward_mode,
                    options.seed,
                )))
            }
            EnvSpec::Scenario(scenario) => AnyPricingEnv::Sim(Box::new(scenario.env(
                options.history_length,
                options.rounds_per_episode,
                options.reward_mode,
                options.seed,
            ))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_builds_every_preset() {
        let registry = EnvRegistry::builtin();
        assert_eq!(registry.names().len(), 1 + ScenarioKind::ALL.len());
        for name in registry.names() {
            let spec = registry.get(name).unwrap();
            let mut env = registry.build(name, &EnvBuildOptions::default()).unwrap();
            let obs = env.reset();
            assert_eq!(obs.len(), env.observation_dim());
            assert_eq!(
                env.observation_dim(),
                4 * spec.features_per_round(),
                "obs dim of `{name}` disagrees with features_per_round"
            );
            let step = env.step(&[12.0]);
            assert!(step.reward.is_finite());
            assert!(env.episode_stats().rounds == 1);
            assert!(env.rounds_per_episode() > 0);
            assert!(env.best_utility().is_finite());
        }
        assert!(registry
            .build("nope", &EnvBuildOptions::default())
            .is_none());
    }

    #[test]
    fn registered_names_can_be_replaced() {
        let mut registry = EnvRegistry::builtin();
        let before = registry.names().len();
        registry.register("static", EnvSpec::Static(ExperimentConfig::paper_n_vmus(3)));
        assert_eq!(registry.names().len(), before);
        match registry.get("static").unwrap() {
            EnvSpec::Static(config) => assert_eq!(config.vmus.len(), 3),
            EnvSpec::Scenario(_) => panic!("static entry must stay static"),
        }
        assert_eq!(registry.get("static").unwrap().features_per_round(), 4);
    }

    #[test]
    fn request_streams_have_serving_geometry_and_are_deterministic() {
        let registry = EnvRegistry::builtin();
        let options = EnvBuildOptions::default();
        for name in ["static", "highway"] {
            let features = registry.get(name).unwrap().features_per_round();
            let stream = registry.request_stream(name, &options, 5, 7).unwrap();
            assert_eq!(stream.len(), 7, "`{name}`: one entry per round");
            for round in &stream {
                assert_eq!(round.len(), 5, "`{name}`: one frame per session");
                for frame in round {
                    assert_eq!(frame.features.len(), features);
                    assert!(frame.features.iter().all(|f| f.is_finite()));
                }
            }
            // Distinct sessions see distinct dynamics (decorrelated seeds)…
            assert_ne!(stream[1][0], stream[1][1]);
            // …and the whole stream replays bit-identically.
            let replay = registry.request_stream(name, &options, 5, 7).unwrap();
            assert_eq!(stream, replay, "`{name}` stream must be deterministic");
        }
        assert!(registry.request_stream("nope", &options, 1, 1).is_none());
    }

    #[test]
    fn any_env_honours_reset_with_seed() {
        let registry = EnvRegistry::builtin();
        for name in ["static", "highway"] {
            let mut env = registry.build(name, &EnvBuildOptions::default()).unwrap();
            let a = env.reset_with_seed(99);
            env.step(&[10.0]);
            let b = env.reset_with_seed(99);
            assert_eq!(a, b, "`{name}` must replay a seeded reset exactly");
        }
    }
}
