//! Vehicular Metaverse Users: the followers of the Stackelberg game.
//!
//! Each VMU `n` owns a twin of size `D_n`, values immersion at `α_n` per unit
//! and chooses how much bandwidth `b_n` to purchase at the posted unit price
//! `p`. Its utility (Eq. (2)) is `U_n(b_n) = α_n ln(1 + 1/A_n) − p·b_n`, and
//! Theorem 1 shows the unique maximiser (Eq. (8)) is
//! `b_n* = α_n / p − D_n / log2(1 + SNR)`.

use vtm_sim::radio::LinkBudget;

use crate::aotm::{aotm, data_units_from_mb, immersion, spectral_efficiency};

/// A VMU participating in the bandwidth market.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmuProfile {
    /// Identifier of the VMU (and of its twin).
    pub id: usize,
    /// Twin size `D_n` in megabytes.
    pub data_size_mb: f64,
    /// Immersion coefficient `α_n` (unit profit of immersion).
    pub alpha: f64,
}

impl VmuProfile {
    /// Creates a VMU profile.
    pub fn new(id: usize, data_size_mb: f64, alpha: f64) -> Self {
        Self {
            id,
            data_size_mb,
            alpha,
        }
    }

    /// Twin size in the data units used by the game (hundreds of MB).
    pub fn data_units(&self) -> f64 {
        data_units_from_mb(self.data_size_mb)
    }

    /// Validates the profile.
    ///
    /// # Errors
    ///
    /// Returns a message when the data size or immersion coefficient is not positive.
    pub fn validate(&self) -> Result<(), String> {
        if self.data_size_mb.is_nan() || self.data_size_mb <= 0.0 {
            return Err(format!("VMU {}: data size must be positive", self.id));
        }
        if self.alpha.is_nan() || self.alpha <= 0.0 {
            return Err(format!(
                "VMU {}: immersion coefficient must be positive",
                self.id
            ));
        }
        Ok(())
    }

    /// Utility `U_n(b_n)` of purchasing `bandwidth_mhz` at unit price `price`
    /// (Eq. (2)).
    ///
    /// A non-positive bandwidth yields zero immersion and zero payment, hence
    /// zero utility (the VMU simply abstains).
    pub fn utility(&self, bandwidth_mhz: f64, price: f64, link: &LinkBudget) -> f64 {
        if bandwidth_mhz <= 0.0 {
            return 0.0;
        }
        let age = aotm(self.data_units(), bandwidth_mhz, link);
        immersion(self.alpha, age) - price * bandwidth_mhz
    }

    /// Best-response bandwidth demand of Eq. (8), projected onto `b_n ≥ 0`:
    /// `b_n* = max(0, α_n / p − D_n / log2(1 + SNR))`.
    ///
    /// # Panics
    ///
    /// Panics if `price` is not positive.
    pub fn best_response(&self, price: f64, link: &LinkBudget) -> f64 {
        assert!(price > 0.0, "price must be positive");
        let unconstrained = self.alpha / price - self.data_units() / spectral_efficiency(link);
        unconstrained.max(0.0)
    }

    /// The price above which this VMU stops purchasing bandwidth entirely
    /// (its unconstrained best response becomes non-positive):
    /// `p̄_n = α_n · log2(1 + SNR) / D_n`.
    pub fn reservation_price(&self, link: &LinkBudget) -> f64 {
        self.alpha * spectral_efficiency(link) / self.data_units()
    }

    /// Utility attained when best-responding to `price`.
    pub fn best_response_utility(&self, price: f64, link: &LinkBudget) -> f64 {
        self.utility(self.best_response(price, link), price, link)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtm_game::optimize::{golden_section_max, is_concave_on};

    fn link() -> LinkBudget {
        LinkBudget::default()
    }

    fn vmu() -> VmuProfile {
        VmuProfile::new(0, 200.0, 5.0)
    }

    #[test]
    fn validation_catches_bad_profiles() {
        assert!(vmu().validate().is_ok());
        assert!(VmuProfile::new(0, 0.0, 5.0).validate().is_err());
        assert!(VmuProfile::new(0, 100.0, -1.0).validate().is_err());
    }

    #[test]
    fn best_response_matches_closed_form() {
        let l = link();
        let v = vmu();
        let p = 25.0;
        let expected = 5.0 / p - 2.0 / spectral_efficiency(&l);
        assert!((v.best_response(p, &l) - expected).abs() < 1e-12);
    }

    #[test]
    fn best_response_is_clamped_to_zero_at_high_prices() {
        let l = link();
        let v = vmu();
        let above = v.reservation_price(&l) * 1.01;
        assert_eq!(v.best_response(above, &l), 0.0);
        let below = v.reservation_price(&l) * 0.99;
        assert!(v.best_response(below, &l) > 0.0);
    }

    #[test]
    fn best_response_maximises_utility_numerically() {
        let l = link();
        let v = vmu();
        for price in [10.0, 25.0, 40.0] {
            let closed_form = v.best_response(price, &l);
            let numeric = golden_section_max(|b| v.utility(b, price, &l), 1e-6, 5.0, 1e-10, 300)
                .unwrap()
                .argmax;
            assert!(
                (closed_form - numeric).abs() < 1e-4,
                "price {price}: closed form {closed_form} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn utility_is_concave_in_bandwidth() {
        let l = link();
        let v = vmu();
        assert!(is_concave_on(
            |b| v.utility(b, 25.0, &l),
            0.01,
            2.0,
            40,
            1e-6
        ));
    }

    #[test]
    fn utility_of_abstaining_is_zero() {
        let l = link();
        assert_eq!(vmu().utility(0.0, 25.0, &l), 0.0);
        assert_eq!(vmu().utility(-1.0, 25.0, &l), 0.0);
    }

    #[test]
    fn best_response_utility_is_nonnegative() {
        // Best-responding can never be worse than abstaining (utility 0).
        let l = link();
        let v = vmu();
        for price in [1.0, 5.0, 25.0, 45.0, 80.0, 200.0] {
            assert!(
                v.best_response_utility(price, &l) >= -1e-12,
                "negative utility at price {price}"
            );
        }
    }

    #[test]
    fn demand_decreases_with_price() {
        let l = link();
        let v = vmu();
        let mut last = f64::INFINITY;
        for price in [5.0, 10.0, 20.0, 40.0, 80.0] {
            let b = v.best_response(price, &l);
            assert!(b <= last + 1e-12);
            last = b;
        }
    }

    #[test]
    fn data_units_conversion() {
        assert!((vmu().data_units() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "price must be positive")]
    fn zero_price_panics() {
        let _ = vmu().best_response(0.0, &link());
    }
}
