//! Deterministic session-keyed routing: the single hash function that maps
//! a session id to a shard, shared by every layer that partitions
//! per-session state.
//!
//! The serving layer's `SessionStore` shards its interior locks with this
//! function, and the gateway fabric routes whole sessions to independent
//! gateway shards with it. Keeping one public pure function (instead of
//! ad-hoc copies) pins the contract the fabric relies on: the assignment
//! depends only on `(session, shard_count)`, so it is stable across
//! restarts that preserve the shard count, and per-session state never
//! crosses shards.

use crate::registry::RequestFrame;

/// 2⁶⁴ / φ — the golden-ratio increment used across the workspace for
/// multiplicative hashing and seed-stream decorrelation.
pub const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer: a full-avalanche bijective mixer over `u64`.
///
/// Useful to derive *independent* routing decisions from one session id:
/// salting the input (`splitmix64(session ^ SALT)`) yields a hash stream
/// decorrelated from [`session_shard`], which is how the fabric assigns
/// A/B arms without correlating them with shard placement.
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(GOLDEN);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The session→shard hash: multiplicative (Fibonacci) hashing of the
/// session id, folded onto `0..shards`.
///
/// Pure in `(session, shards)`: the same session always lands on the same
/// shard for a given shard count, across threads, processes and restarts.
/// `shards == 0` is treated as one shard so the function is total.
#[must_use]
pub fn session_shard(session: u64, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    (session.wrapping_add(1).wrapping_mul(GOLDEN) >> 32) as usize % shards
}

/// Splits one round of request frames into per-shard lanes keyed by
/// [`session_shard`], preserving the intra-shard submission order.
///
/// This is the load-generation dual of fabric routing: a bench driving N
/// gateway shards can pre-partition each `request_stream` round so every
/// ingress lane offers exactly the traffic its shard would receive.
#[must_use]
pub fn route_frames(frames: &[RequestFrame], shards: usize) -> Vec<Vec<RequestFrame>> {
    let lanes = shards.max(1);
    let mut routed: Vec<Vec<RequestFrame>> = (0..lanes).map(|_| Vec::new()).collect();
    for frame in frames {
        routed[session_shard(frame.session, lanes)].push(frame.clone());
    }
    routed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_shard_is_pure_total_and_in_range() {
        for shards in [0usize, 1, 2, 3, 7, 16] {
            for session in (0..2048u64).chain([u64::MAX, u64::MAX - 1]) {
                let shard = session_shard(session, shards);
                assert!(shard < shards.max(1));
                assert_eq!(shard, session_shard(session, shards), "pure function");
            }
        }
    }

    /// The exact assignment is part of the persistence contract (restores
    /// and replays assume it), so pin a few values.
    #[test]
    fn session_shard_matches_the_pinned_golden_formula() {
        for shards in [2usize, 4, 16] {
            for session in [0u64, 1, 2, 41, 1_000_003, u64::MAX] {
                let expected =
                    (session.wrapping_add(1).wrapping_mul(GOLDEN) >> 32) as usize % shards;
                assert_eq!(session_shard(session, shards), expected);
            }
        }
    }

    #[test]
    fn session_shard_spreads_sessions_evenly_enough() {
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for session in 0..8000u64 {
            counts[session_shard(session, shards)] += 1;
        }
        for &count in &counts {
            assert!(
                (800..=1200).contains(&count),
                "shard load {count} outside ±20% of the 1000 mean: {counts:?}"
            );
        }
    }

    #[test]
    fn splitmix64_avalanches_and_is_deterministic() {
        // Reference values of the standard SplitMix64 finalizer.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
        // Salting decorrelates: parity of the salted hash disagrees with the
        // unsalted shard parity on a healthy fraction of sessions.
        let mut disagree = 0;
        for session in 0..4096u64 {
            let a = session_shard(session, 2);
            let b = (splitmix64(session ^ GOLDEN) % 2) as usize;
            if a != b {
                disagree += 1;
            }
        }
        assert!((1024..=3072).contains(&disagree), "disagree = {disagree}");
    }

    #[test]
    fn route_frames_partitions_by_session_and_keeps_order() {
        let frames: Vec<RequestFrame> = (0..64u64)
            .map(|s| RequestFrame {
                session: s % 13,
                features: vec![s as f64],
            })
            .collect();
        let routed = route_frames(&frames, 4);
        assert_eq!(routed.len(), 4);
        assert_eq!(routed.iter().map(Vec::len).sum::<usize>(), frames.len());
        for (shard, lane) in routed.iter().enumerate() {
            let mut last_seen = [f64::NEG_INFINITY; 13];
            for frame in lane {
                assert_eq!(session_shard(frame.session, 4), shard);
                // Intra-session order is preserved (features increase).
                assert!(frame.features[0] > last_seen[frame.session as usize]);
                last_seen[frame.session as usize] = frame.features[0];
            }
        }
        // Zero shards degrades to a single lane.
        assert_eq!(route_frames(&frames, 0).len(), 1);
    }
}
