//! The learning-based incentive mechanism (Algorithm 1).
//!
//! Under incomplete information the MSP cannot evaluate the closed-form
//! equilibrium (it does not know the VMUs' `α_n` and `D_n`), so it learns its
//! pricing policy with PPO from the observable history of posted prices and
//! resulting demands. This module implements the training loop of Algorithm 1
//! and the evaluation utilities the experiment harness uses to compare the
//! learned policy against the baselines and against the complete-information
//! Stackelberg equilibrium.

use vtm_rl::env::Environment;
use vtm_rl::ppo::PpoAgent;
use vtm_rl::snapshot::{PolicySnapshot, SnapshotError};
use vtm_rl::trainer::Trainer;

use crate::config::ExperimentConfig;
use crate::env::{PricingEnv, RewardMode};
use crate::schemes::PricingScheme;
use crate::stackelberg::{AotmStackelbergGame, EquilibriumOutcome};

/// Per-episode training log entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpisodeLog {
    /// Episode index (0-based).
    pub episode: usize,
    /// Undiscounted return: the sum of the Eq. (12) rewards over the episode
    /// (this is the series of the paper's Fig. 2(a)).
    pub episode_return: f64,
    /// Mean MSP utility over the episode's rounds (Fig. 2(b)).
    pub mean_msp_utility: f64,
    /// MSP utility of the episode's final round.
    pub final_msp_utility: f64,
    /// Best MSP utility reached within the episode (`U_best` at episode end).
    pub best_msp_utility: f64,
    /// Mean posted price over the episode.
    pub mean_price: f64,
}

/// Complete training history of the mechanism.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainingHistory {
    /// Per-episode logs in training order.
    pub episodes: Vec<EpisodeLog>,
}

impl TrainingHistory {
    /// The per-episode returns (Fig. 2(a) series).
    pub fn returns(&self) -> Vec<f64> {
        self.episodes.iter().map(|e| e.episode_return).collect()
    }

    /// The per-episode mean MSP utilities (Fig. 2(b) series).
    pub fn msp_utilities(&self) -> Vec<f64> {
        self.episodes.iter().map(|e| e.mean_msp_utility).collect()
    }

    /// Mean of a metric over the last `window` episodes (all if fewer).
    pub fn tail_mean<F>(&self, window: usize, metric: F) -> f64
    where
        F: Fn(&EpisodeLog) -> f64,
    {
        if self.episodes.is_empty() {
            return 0.0;
        }
        let start = self.episodes.len().saturating_sub(window);
        let tail = &self.episodes[start..];
        tail.iter().map(&metric).sum::<f64>() / tail.len() as f64
    }
}

/// Result of evaluating a (deterministic) pricing policy.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluationResult {
    /// Mean posted price over the evaluation rounds.
    pub mean_price: f64,
    /// Mean MSP utility over the evaluation rounds.
    pub mean_msp_utility: f64,
    /// Mean total bandwidth sold (MHz).
    pub mean_total_bandwidth_mhz: f64,
    /// Mean total VMU utility.
    pub mean_total_vmu_utility: f64,
    /// Outcome of the final evaluation round.
    pub final_outcome: EquilibriumOutcome,
    /// Ratio of the mean MSP utility to the complete-information equilibrium
    /// utility (1.0 means the learned policy matches the Stackelberg optimum).
    pub equilibrium_ratio: f64,
}

/// The learning-based incentive mechanism: the PPO agent, its environment and
/// the game it prices.
#[derive(Debug, Clone)]
pub struct IncentiveMechanism {
    config: ExperimentConfig,
    env: PricingEnv,
    agent: PpoAgent,
    reward_mode: RewardMode,
    /// Global training-round counter consumed by every training entry point
    /// (they are all shims over [`Trainer`]). It advances the per-round
    /// environment and collector seed schedule across calls, so incremental
    /// training never replays an earlier call's random streams while a fixed
    /// call sequence stays deterministic — and it is persisted into policy
    /// snapshots so a restored mechanism resumes the schedule exactly.
    trained_rounds: u64,
}

impl IncentiveMechanism {
    /// Builds the mechanism from an experiment configuration with the paper's
    /// sparse improvement reward.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not validate.
    pub fn new(config: ExperimentConfig) -> Self {
        Self::with_reward_mode(config, RewardMode::Improvement)
    }

    /// Builds the mechanism with an explicit reward mode (ablation E8).
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not validate.
    pub fn with_reward_mode(config: ExperimentConfig, reward_mode: RewardMode) -> Self {
        config
            .validate()
            .expect("experiment configuration must be valid");
        let game = AotmStackelbergGame::from_config(&config);
        let env = PricingEnv::new(
            game,
            config.drl.history_length,
            config.drl.rounds_per_episode,
            reward_mode,
            config.drl.seed,
        );
        let ppo = config.drl.to_ppo_config(env.observation_dim());
        let agent = PpoAgent::new(ppo, env.action_space());
        Self {
            config,
            env,
            agent,
            reward_mode,
            trained_rounds: 0,
        }
    }

    /// The experiment configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// The underlying game.
    pub fn game(&self) -> &AotmStackelbergGame {
        self.env.game()
    }

    /// The reward mode used for training.
    pub fn reward_mode(&self) -> RewardMode {
        self.reward_mode
    }

    /// Immutable access to the PPO agent (e.g. for inspection in tests).
    pub fn agent(&self) -> &PpoAgent {
        &self.agent
    }

    /// Runs Algorithm 1 for the configured number of episodes.
    pub fn train(&mut self) -> TrainingHistory {
        let episodes = self.config.drl.episodes;
        self.train_episodes(episodes)
    }

    /// Runs Algorithm 1 for an explicit number of episodes (useful for tests
    /// and for the ablation sweeps).
    ///
    /// A thin shim over the builder-style [`Trainer`]: one environment
    /// replica, one episode per PPO update (Algorithm 1, lines 10-13). The
    /// per-episode update runs through the agent's fused, allocation-free
    /// path ([`PpoAgent::update`]).
    pub fn train_episodes(&mut self, episodes: usize) -> TrainingHistory {
        self.train_with(episodes, 1, 1)
    }

    /// Vectorized Algorithm 1: trains on `num_envs` environment replicas
    /// collected in parallel, one PPO update per collection round.
    ///
    /// A thin shim over the builder-style [`Trainer`], which pins every
    /// replica's environment stream to `(seed, round, replica)` and draws
    /// collector noise per round — so a fixed call sequence is deterministic
    /// regardless of thread scheduling, while repeated calls draw fresh
    /// randomness instead of replaying the first call's streams. Every round
    /// contributes `num_envs` episodes to one update, so the effective batch
    /// per update is `num_envs` times larger than in
    /// [`IncentiveMechanism::train_episodes`]; `episodes` is rounded up to a
    /// whole number of rounds.
    ///
    /// `num_threads = 0` uses one worker per available CPU core.
    ///
    /// # Panics
    ///
    /// Panics if `num_envs` is zero.
    pub fn train_episodes_parallel(
        &mut self,
        episodes: usize,
        num_envs: usize,
        num_threads: usize,
    ) -> TrainingHistory {
        self.train_with(episodes, num_envs, num_threads)
    }

    /// The single training path behind every public entry point: a
    /// [`Trainer`] run over clones of the mechanism's environment, with the
    /// per-episode hook reconstructing the paper's training logs from each
    /// replica's episode aggregates.
    fn train_with(
        &mut self,
        episodes: usize,
        num_envs: usize,
        num_threads: usize,
    ) -> TrainingHistory {
        assert!(num_envs > 0, "need at least one environment replica");
        let rounds = self.config.drl.rounds_per_episode;
        let mut history = TrainingHistory::default();
        let report = Trainer::for_env(self.env.clone())
            .episodes(episodes)
            .collectors(num_envs)
            .threads(num_threads)
            .max_steps(rounds)
            .seed(self.config.drl.seed)
            .start_round(self.trained_rounds)
            .on_episode(|event| {
                let stats = event.env.episode_stats();
                history.episodes.push(EpisodeLog {
                    episode: event.episode,
                    episode_return: event.episode_return,
                    mean_msp_utility: stats.mean_utility(),
                    final_msp_utility: stats.final_utility,
                    best_msp_utility: event.env.best_utility(),
                    mean_price: stats.mean_price(),
                });
            })
            .run(&mut self.agent)
            .unwrap_or_else(|e| panic!("training failed: {e}"));
        self.trained_rounds = report.next_round();
        history
    }

    /// Captures the mechanism's trained policy (and its training-round
    /// counter) as a persistent [`PolicySnapshot`] — the *checkpoint* step of
    /// the train → checkpoint → load → serve lifecycle.
    pub fn snapshot(&self) -> PolicySnapshot {
        self.agent
            .snapshot()
            .with_trained_rounds(self.trained_rounds)
    }

    /// Restores the policy (agent state and round counter) from a snapshot,
    /// e.g. to resume training in a new process.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Incompatible`] when the snapshot was taken
    /// for a different observation/action geometry than this mechanism's, or
    /// when it carries a frozen observation normalizer (the mechanism trains
    /// and evaluates on raw observations; a normalizer-carrying policy
    /// belongs in the serving layer, or must have its normalizer removed
    /// before restoring here).
    pub fn restore_policy(&mut self, snapshot: &PolicySnapshot) -> Result<(), SnapshotError> {
        snapshot.validate()?;
        if snapshot.obs_normalizer.is_some() {
            return Err(SnapshotError::Incompatible(
                "snapshot carries a frozen observation normalizer; the mechanism trains and \
                 evaluates on raw observations — clear it before restoring"
                    .to_string(),
            ));
        }
        if snapshot.config.obs_dim != self.env.observation_dim() {
            return Err(SnapshotError::Incompatible(format!(
                "snapshot obs_dim {} != environment observation dim {}",
                snapshot.config.obs_dim,
                self.env.observation_dim()
            )));
        }
        if snapshot.action_space != self.env.action_space() {
            return Err(SnapshotError::Incompatible(
                "snapshot action space differs from the environment's".to_string(),
            ));
        }
        self.agent = PpoAgent::restore(snapshot);
        self.trained_rounds = snapshot.trained_rounds;
        Ok(())
    }

    /// Evaluates the current (deterministic) policy for `rounds` rounds.
    pub fn evaluate(&mut self, rounds: usize) -> EvaluationResult {
        assert!(rounds > 0, "evaluation needs at least one round");
        let mut obs = self.env.reset();
        let mut prices = Vec::with_capacity(rounds);
        let mut msp_utilities = Vec::with_capacity(rounds);
        let mut bandwidths = Vec::with_capacity(rounds);
        let mut vmu_utilities = Vec::with_capacity(rounds);
        let mut final_outcome = None;
        for _ in 0..rounds {
            let action = self.agent.act_deterministic(&obs);
            let step = self.env.step(&action);
            let outcome = self
                .env
                .last_outcome()
                .expect("step always records an outcome")
                .clone();
            prices.push(outcome.price);
            msp_utilities.push(outcome.msp_utility);
            bandwidths.push(outcome.total_bandwidth_mhz());
            vmu_utilities.push(outcome.total_vmu_utility());
            final_outcome = Some(outcome);
            obs = step.observation;
        }
        let eq_utility = self.game().closed_form_equilibrium().msp_utility.max(1e-12);
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        let mean_msp_utility = mean(&msp_utilities);
        EvaluationResult {
            mean_price: mean(&prices),
            mean_msp_utility,
            mean_total_bandwidth_mhz: mean(&bandwidths),
            mean_total_vmu_utility: mean(&vmu_utilities),
            final_outcome: final_outcome.expect("rounds > 0"),
            equilibrium_ratio: mean_msp_utility / eq_utility,
        }
    }

    /// Wraps the trained policy as a [`PricingScheme`] so the experiment
    /// harness can compare it uniformly with the baselines. The scheme posts
    /// the policy's deterministic price given the mechanism's rolling
    /// observation history.
    pub fn into_scheme(mut self) -> DrlPricing {
        let obs = self.env.reset();
        DrlPricing {
            mechanism: self,
            observation: obs,
        }
    }
}

/// The trained DRL policy exposed as a [`PricingScheme`].
#[derive(Debug, Clone)]
pub struct DrlPricing {
    mechanism: IncentiveMechanism,
    observation: Vec<f64>,
}

impl DrlPricing {
    /// Read access to the wrapped mechanism.
    pub fn mechanism(&self) -> &IncentiveMechanism {
        &self.mechanism
    }
}

impl PricingScheme for DrlPricing {
    fn name(&self) -> &str {
        "drl-ppo"
    }

    fn propose_price(&mut self, _game: &AotmStackelbergGame) -> f64 {
        let action = self.mechanism.agent.act_deterministic(&self.observation);
        let (lo, hi) = self.mechanism.game().msp().price_bounds();
        action[0].clamp(lo, hi)
    }

    fn observe_utility(&mut self, price: f64, _msp_utility: f64) {
        // Advance the internal environment so the observation history follows
        // the posted prices.
        let step = self.mechanism.env.step(&[price]);
        self.observation = step.observation;
        if step.done {
            self.observation = self.mechanism.env.reset();
        }
    }

    fn reset(&mut self) {
        self.observation = self.mechanism.env.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DrlConfig;
    use crate::schemes::run_scheme;

    fn fast_config() -> ExperimentConfig {
        ExperimentConfig {
            drl: DrlConfig {
                episodes: 30,
                rounds_per_episode: 30,
                learning_rate: 3e-4,
                seed: 42,
                ..DrlConfig::default()
            },
            ..ExperimentConfig::paper_two_vmus()
        }
    }

    #[test]
    fn construction_wires_dimensions() {
        let mech = IncentiveMechanism::new(fast_config());
        assert_eq!(mech.config().vmus.len(), 2);
        assert_eq!(mech.reward_mode(), RewardMode::Improvement);
        assert!(mech.agent().parameter_count() > 0);
    }

    #[test]
    fn training_produces_history_of_requested_length() {
        let mut mech = IncentiveMechanism::new(fast_config());
        let history = mech.train_episodes(5);
        assert_eq!(history.episodes.len(), 5);
        assert_eq!(history.returns().len(), 5);
        assert_eq!(history.msp_utilities().len(), 5);
        for log in &history.episodes {
            assert!(log.episode_return >= 0.0);
            assert!(log.episode_return <= 30.0 + 1e-9);
            assert!(log.mean_msp_utility.is_finite());
            assert!(
                log.best_msp_utility >= log.mean_msp_utility - 1e-9 || log.best_msp_utility > 0.0
            );
            assert!((5.0..=50.0).contains(&log.mean_price));
        }
    }

    #[test]
    fn parallel_training_produces_history_and_is_deterministic() {
        let mut a = IncentiveMechanism::new(fast_config());
        let mut b = IncentiveMechanism::new(fast_config());
        // 5 episodes over 4 replicas rounds up to 2 rounds = 8 logged episodes.
        let ha = a.train_episodes_parallel(5, 4, 4);
        let hb = b.train_episodes_parallel(5, 4, 1);
        assert_eq!(ha.episodes.len(), 8);
        for log in &ha.episodes {
            assert!(log.episode_return.is_finite());
            assert!(log.mean_msp_utility.is_finite());
            assert!((5.0..=50.0).contains(&log.mean_price));
            assert!(log.best_msp_utility + 1e-9 >= log.final_msp_utility.min(0.0));
        }
        // Same config => identical trajectories, regardless of thread count.
        assert_eq!(ha.episodes.len(), hb.episodes.len());
        for (x, y) in ha.episodes.iter().zip(hb.episodes.iter()) {
            assert_eq!(x.episode, y.episode);
            assert!((x.episode_return - y.episode_return).abs() < 1e-12);
            assert!((x.mean_msp_utility - y.mean_msp_utility).abs() < 1e-12);
            assert!((x.mean_price - y.mean_price).abs() < 1e-12);
        }
    }

    #[test]
    fn repeated_parallel_training_does_not_replay_random_streams() {
        let mut mech = IncentiveMechanism::new(fast_config());
        let first = mech.train_episodes_parallel(4, 4, 1);
        let second = mech.train_episodes_parallel(4, 4, 1);
        // A second call must continue with fresh exploration noise and env
        // histories, not replay the first call's episodes.
        let replayed = first
            .episodes
            .iter()
            .zip(second.episodes.iter())
            .all(|(a, b)| (a.episode_return - b.episode_return).abs() < 1e-12);
        assert!(!replayed, "second call replayed the first call's streams");
        // And the sequence as a whole stays deterministic.
        let mut mech2 = IncentiveMechanism::new(fast_config());
        let first2 = mech2.train_episodes_parallel(4, 4, 2);
        let second2 = mech2.train_episodes_parallel(4, 4, 2);
        for (a, b) in first.episodes.iter().zip(first2.episodes.iter()) {
            assert!((a.episode_return - b.episode_return).abs() < 1e-12);
        }
        for (a, b) in second.episodes.iter().zip(second2.episodes.iter()) {
            assert!((a.episode_return - b.episode_return).abs() < 1e-12);
        }
    }

    #[test]
    fn tail_mean_summarises_recent_episodes() {
        let history = TrainingHistory {
            episodes: (0..10)
                .map(|i| EpisodeLog {
                    episode: i,
                    episode_return: i as f64,
                    mean_msp_utility: i as f64,
                    final_msp_utility: i as f64,
                    best_msp_utility: i as f64,
                    mean_price: 10.0,
                })
                .collect(),
        };
        assert!((history.tail_mean(2, |e| e.episode_return) - 8.5).abs() < 1e-12);
        assert!((history.tail_mean(100, |e| e.episode_return) - 4.5).abs() < 1e-12);
        assert_eq!(
            TrainingHistory::default().tail_mean(3, |e| e.episode_return),
            0.0
        );
    }

    #[test]
    fn training_with_dense_reward_approaches_equilibrium() {
        let mut config = fast_config();
        config.drl.episodes = 80;
        config.drl.rounds_per_episode = 40;
        let mut mech = IncentiveMechanism::with_reward_mode(config, RewardMode::NormalizedUtility);
        let eq = mech.game().closed_form_equilibrium();
        let _history = mech.train();
        let eval = mech.evaluate(20);
        assert!(
            eval.equilibrium_ratio > 0.6,
            "learned policy reaches only {:.2} of the equilibrium utility (price {} vs {})",
            eval.equilibrium_ratio,
            eval.mean_price,
            eq.price
        );
        assert!(eval.mean_total_bandwidth_mhz > 0.0);
        assert!(eval.mean_msp_utility > 0.0);
    }

    #[test]
    fn evaluation_reports_consistent_aggregates() {
        let mut mech = IncentiveMechanism::new(fast_config());
        let eval = mech.evaluate(10);
        assert!(eval.mean_price >= 5.0 && eval.mean_price <= 50.0);
        assert!(eval.equilibrium_ratio.is_finite());
        assert_eq!(eval.final_outcome.demands_mhz.len(), 2);
    }

    #[test]
    fn drl_scheme_interoperates_with_run_scheme() {
        let mut mech = IncentiveMechanism::new(fast_config());
        mech.train_episodes(3);
        let game = mech.game().clone();
        let mut scheme = mech.into_scheme();
        assert_eq!(scheme.name(), "drl-ppo");
        let utilities = run_scheme(&mut scheme, &game, 15);
        assert_eq!(utilities.len(), 15);
        assert!(utilities.iter().all(|u| u.is_finite()));
        scheme.reset();
        assert!(scheme.mechanism().config().vmus.len() == 2);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn evaluation_requires_rounds() {
        let mut mech = IncentiveMechanism::new(fast_config());
        let _ = mech.evaluate(0);
    }
}
