//! Multi-MSP price competition — the paper's stated future-work extension.
//!
//! The paper's conclusion announces an extension "to scenarios with multiple
//! MSPs and VMUs". This module provides that extension: several MSPs (each
//! with its own unit cost and bandwidth cap) simultaneously post prices, each
//! VMU purchases from the MSP offering it the highest utility (the cheapest
//! one, since the channel is identical) and best-responds with Eq. (8), and
//! the MSPs adapt their prices by iterated best response. With two or more
//! MSPs of equal cost the competition drives prices towards the cost
//! (Bertrand-style), eroding the monopoly profit the single-MSP Stackelberg
//! game sustains — which quantifies how much the paper's monopoly assumption
//! matters.

use vtm_game::optimize::golden_section_max;
use vtm_sim::radio::LinkBudget;

use crate::vmu::VmuProfile;

/// One competing Metaverse Service Provider.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompetingMsp {
    /// Identifier of the MSP.
    pub id: usize,
    /// Unit transmission cost `C_j`.
    pub unit_cost: f64,
    /// Maximum price `p_max,j` this MSP may post.
    pub max_price: f64,
    /// Maximum total bandwidth this MSP can sell (MHz).
    pub max_bandwidth_mhz: f64,
}

impl CompetingMsp {
    /// Creates a competing MSP.
    ///
    /// # Panics
    ///
    /// Panics if the cost is not positive, the price cap does not exceed the
    /// cost, or the bandwidth cap is not positive.
    pub fn new(id: usize, unit_cost: f64, max_price: f64, max_bandwidth_mhz: f64) -> Self {
        assert!(unit_cost > 0.0, "unit cost must be positive");
        assert!(max_price > unit_cost, "max price must exceed the unit cost");
        assert!(max_bandwidth_mhz > 0.0, "bandwidth cap must be positive");
        Self {
            id,
            unit_cost,
            max_price,
            max_bandwidth_mhz,
        }
    }
}

/// Outcome of the multi-MSP price competition.
#[derive(Debug, Clone, PartialEq)]
pub struct CompetitionOutcome {
    /// Final posted price of every MSP (indexed like the MSP list).
    pub prices: Vec<f64>,
    /// For every VMU, the index of the MSP it purchases from.
    pub assignments: Vec<usize>,
    /// Bandwidth purchased by every VMU (MHz).
    pub demands_mhz: Vec<f64>,
    /// Utility of every MSP.
    pub msp_utilities: Vec<f64>,
    /// Utility of every VMU.
    pub vmu_utilities: Vec<f64>,
    /// Number of best-response sweeps performed before convergence (or the
    /// iteration cap).
    pub iterations: usize,
    /// Whether the price profile converged (no MSP moved its price by more
    /// than the tolerance in the final sweep).
    pub converged: bool,
}

impl CompetitionOutcome {
    /// Total bandwidth sold across all MSPs (MHz).
    pub fn total_bandwidth_mhz(&self) -> f64 {
        self.demands_mhz.iter().sum()
    }

    /// Total profit of all MSPs.
    pub fn total_msp_utility(&self) -> f64 {
        self.msp_utilities.iter().sum()
    }
}

/// A market with several competing MSPs and a shared population of VMUs.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiMspMarket {
    msps: Vec<CompetingMsp>,
    vmus: Vec<VmuProfile>,
    link: LinkBudget,
}

impl MultiMspMarket {
    /// Creates a market.
    ///
    /// # Panics
    ///
    /// Panics if there are no MSPs or no VMUs, or a VMU profile is invalid.
    pub fn new(msps: Vec<CompetingMsp>, vmus: Vec<VmuProfile>, link: LinkBudget) -> Self {
        assert!(!msps.is_empty(), "the market needs at least one MSP");
        assert!(!vmus.is_empty(), "the market needs at least one VMU");
        for vmu in &vmus {
            vmu.validate().expect("VMU profiles must be valid");
        }
        Self { msps, vmus, link }
    }

    /// The competing MSPs.
    pub fn msps(&self) -> &[CompetingMsp] {
        &self.msps
    }

    /// The VMUs.
    pub fn vmus(&self) -> &[VmuProfile] {
        &self.vmus
    }

    /// Given a posted price profile, assigns every VMU to the MSP that
    /// maximises its utility (ties broken towards the lower MSP index) and
    /// returns `(assignments, demands)`.
    pub fn assign_vmus(&self, prices: &[f64]) -> (Vec<usize>, Vec<f64>) {
        assert_eq!(prices.len(), self.msps.len(), "one price per MSP required");
        let mut assignments = Vec::with_capacity(self.vmus.len());
        let mut demands = Vec::with_capacity(self.vmus.len());
        for vmu in &self.vmus {
            let mut best = (0usize, f64::NEG_INFINITY, 0.0f64);
            for (j, &price) in prices.iter().enumerate() {
                let demand = vmu.best_response(price, &self.link);
                let utility = vmu.utility(demand, price, &self.link);
                if utility > best.1 + 1e-12 {
                    best = (j, utility, demand);
                }
            }
            assignments.push(best.0);
            demands.push(best.2);
        }
        (assignments, demands)
    }

    /// Utility of MSP `j` under a price profile (its margin times the demand
    /// of the VMUs assigned to it, truncated at its bandwidth cap by
    /// proportional scaling).
    pub fn msp_utility(&self, j: usize, prices: &[f64]) -> f64 {
        let (assignments, demands) = self.assign_vmus(prices);
        let msp = &self.msps[j];
        let total: f64 = assignments
            .iter()
            .zip(demands.iter())
            .filter(|(&a, _)| a == j)
            .map(|(_, &d)| d)
            .sum();
        let sold = total.min(msp.max_bandwidth_mhz);
        (prices[j] - msp.unit_cost) * sold
    }

    /// Runs iterated best-response price competition.
    ///
    /// Each sweep lets every MSP in turn re-optimise its own price (by
    /// golden-section search over `[C_j, p_max,j]`) holding the others fixed;
    /// the process stops when no price moves by more than `tolerance` or
    /// after `max_iterations` sweeps.
    pub fn solve_price_competition(
        &self,
        max_iterations: usize,
        tolerance: f64,
    ) -> CompetitionOutcome {
        let mut prices: Vec<f64> = self.msps.iter().map(|m| m.max_price).collect();
        let mut converged = false;
        let mut iterations = 0;
        for _ in 0..max_iterations {
            iterations += 1;
            let mut max_move = 0.0f64;
            for j in 0..self.msps.len() {
                let msp = &self.msps[j];
                let mut trial = prices.clone();
                let best = golden_section_max(
                    |p| {
                        trial[j] = p;
                        self.msp_utility(j, &trial)
                    },
                    msp.unit_cost,
                    msp.max_price,
                    1e-6,
                    200,
                )
                .map(|m| m.argmax)
                .unwrap_or(msp.unit_cost);
                max_move = max_move.max((best - prices[j]).abs());
                prices[j] = best;
            }
            if max_move <= tolerance {
                converged = true;
                break;
            }
        }

        let (assignments, demands) = self.assign_vmus(&prices);
        let msp_utilities: Vec<f64> = (0..self.msps.len())
            .map(|j| self.msp_utility(j, &prices))
            .collect();
        let vmu_utilities: Vec<f64> = self
            .vmus
            .iter()
            .zip(assignments.iter().zip(demands.iter()))
            .map(|(vmu, (&a, &d))| vmu.utility(d, prices[a], &self.link))
            .collect();
        CompetitionOutcome {
            prices,
            assignments,
            demands_mhz: demands,
            msp_utilities,
            vmu_utilities,
            iterations,
            converged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExperimentConfig, MarketConfig};
    use crate::stackelberg::AotmStackelbergGame;

    fn vmus() -> Vec<VmuProfile> {
        vec![
            VmuProfile::new(0, 200.0, 5.0),
            VmuProfile::new(1, 100.0, 5.0),
            VmuProfile::new(2, 150.0, 10.0),
        ]
    }

    #[test]
    fn single_msp_competition_recovers_the_monopoly_price() {
        let market = MultiMspMarket::new(
            vec![CompetingMsp::new(0, 5.0, 50.0, 50.0)],
            vec![
                VmuProfile::new(0, 200.0, 5.0),
                VmuProfile::new(1, 100.0, 5.0),
            ],
            LinkBudget::default(),
        );
        let outcome = market.solve_price_competition(50, 1e-6);
        let monopoly = AotmStackelbergGame::new(
            MarketConfig::default(),
            vec![
                VmuProfile::new(0, 200.0, 5.0),
                VmuProfile::new(1, 100.0, 5.0),
            ],
            LinkBudget::default(),
        )
        .closed_form_equilibrium();
        assert!(outcome.converged);
        assert!(
            (outcome.prices[0] - monopoly.price).abs() < 0.1,
            "single-MSP competition price {} vs monopoly {}",
            outcome.prices[0],
            monopoly.price
        );
        assert!((outcome.total_msp_utility() - monopoly.msp_utility).abs() < 0.05);
    }

    #[test]
    fn duopoly_prices_fall_below_the_monopoly_price() {
        let market = MultiMspMarket::new(
            vec![
                CompetingMsp::new(0, 5.0, 50.0, 50.0),
                CompetingMsp::new(1, 5.0, 50.0, 50.0),
            ],
            vmus(),
            LinkBudget::default(),
        );
        let outcome = market.solve_price_competition(100, 1e-4);
        let monopoly =
            AotmStackelbergGame::new(MarketConfig::default(), vmus(), LinkBudget::default())
                .closed_form_equilibrium();
        for &p in &outcome.prices {
            assert!(
                p <= monopoly.price + 1e-6,
                "competitive price {p} should not exceed the monopoly price {}",
                monopoly.price
            );
        }
        // Competition benefits the VMUs relative to the monopoly.
        let competitive_vmu_total: f64 = outcome.vmu_utilities.iter().sum();
        assert!(competitive_vmu_total >= monopoly.total_vmu_utility() - 1e-9);
    }

    #[test]
    fn vmus_choose_the_cheaper_msp() {
        let market = MultiMspMarket::new(
            vec![
                CompetingMsp::new(0, 5.0, 50.0, 50.0),
                CompetingMsp::new(1, 5.0, 50.0, 50.0),
            ],
            vmus(),
            LinkBudget::default(),
        );
        let (assignments, demands) = market.assign_vmus(&[10.0, 30.0]);
        assert!(assignments.iter().all(|&a| a == 0));
        assert!(demands.iter().all(|&d| d > 0.0));
    }

    #[test]
    fn asymmetric_costs_let_the_cheaper_msp_win_the_market() {
        let market = MultiMspMarket::new(
            vec![
                CompetingMsp::new(0, 5.0, 50.0, 50.0),
                CompetingMsp::new(1, 9.0, 50.0, 50.0),
            ],
            vmus(),
            LinkBudget::default(),
        );
        let outcome = market.solve_price_competition(100, 1e-4);
        // Every VMU buys from the MSP whose posted price gives it the higher
        // utility (i.e. the cheaper one), prices stay within each MSP's
        // bounds, and somebody sells bandwidth.
        let cheaper = if outcome.prices[0] <= outcome.prices[1] {
            0
        } else {
            1
        };
        assert!(outcome.assignments.iter().all(|&a| a == cheaper));
        for (msp, &p) in market.msps().iter().zip(outcome.prices.iter()) {
            assert!(p >= msp.unit_cost - 1e-9 && p <= msp.max_price + 1e-9);
        }
        assert!(outcome.total_bandwidth_mhz() > 0.0);
        assert!(outcome.iterations >= 1);
        // Under competition nobody loses money.
        assert!(outcome.msp_utilities.iter().all(|&u| u >= -1e-9));
    }

    #[test]
    #[should_panic(expected = "at least one MSP")]
    fn empty_msp_list_rejected() {
        let _ = MultiMspMarket::new(vec![], vmus(), LinkBudget::default());
    }

    #[test]
    #[should_panic(expected = "max price must exceed the unit cost")]
    fn bad_msp_rejected() {
        let _ = CompetingMsp::new(0, 10.0, 10.0, 50.0);
    }

    #[test]
    fn outcome_serialises() {
        let market = MultiMspMarket::new(
            vec![CompetingMsp::new(0, 5.0, 50.0, 50.0)],
            vec![VmuProfile::new(0, 100.0, 5.0)],
            LinkBudget::default(),
        );
        let outcome = market.solve_price_competition(10, 1e-4);
        let debug = format!("{outcome:?}");
        assert!(debug.contains("prices"));
        let _cfg = ExperimentConfig::paper_two_vmus();
    }
}
