//! The POMDP environment the MSP agent learns in (§IV-A).
//!
//! * **State** `S_k = {p_k, b_k}` — the current price and demand profile.
//! * **Observation** `o_k` — the prices and demand profiles of the past `L`
//!   game rounds (Eq. (11)); the first `L` entries of an episode are filled
//!   with randomly generated rounds, as the paper prescribes.
//! * **Action** — the unit price `p_k ∈ [C, p_max]`.
//! * **Reward** — Eq. (12): `1` when the MSP's utility reaches or exceeds the
//!   best utility obtained so far in the episode, `0` otherwise. A dense
//!   variant (normalised utility) is provided for the reward-shaping ablation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

use vtm_rl::env::{ActionSpace, Environment, Step};

use crate::stackelberg::{AotmStackelbergGame, EquilibriumOutcome};

/// Reward definition used by the environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RewardMode {
    /// The paper's sparse indicator reward of Eq. (12).
    #[default]
    Improvement,
    /// Dense shaping: the MSP utility normalised by the best utility on a
    /// coarse price grid (ablation E8).
    NormalizedUtility,
}

/// One completed pricing round, kept for observation history and logging.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// Posted unit price.
    pub price: f64,
    /// Bandwidth demands of every VMU (MHz).
    pub demands_mhz: Vec<f64>,
    /// MSP utility obtained in the round.
    pub msp_utility: f64,
}

/// The Stackelberg pricing environment exposed to the DRL agent.
#[derive(Debug, Clone)]
pub struct PricingEnv {
    game: AotmStackelbergGame,
    history_length: usize,
    rounds_per_episode: usize,
    reward_mode: RewardMode,
    reference_utility: f64,
    demand_scale: Vec<f64>,
    history: VecDeque<RoundRecord>,
    round: usize,
    best_utility: f64,
    last_outcome: Option<EquilibriumOutcome>,
    stats: EpisodeStats,
    rng: StdRng,
}

/// Running aggregates over the current episode, kept so that callers driving
/// the environment through the generic [`Environment`] trait (in particular
/// the vectorized rollout collector, which never sees per-step outcomes) can
/// still reconstruct the paper's per-episode training logs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpisodeStats {
    /// Rounds played so far in the episode.
    pub rounds: usize,
    /// Sum of the MSP utilities over the episode's rounds.
    pub utility_sum: f64,
    /// Sum of the posted (clamped) prices over the episode's rounds.
    pub price_sum: f64,
    /// MSP utility of the most recent round.
    pub final_utility: f64,
}

impl EpisodeStats {
    /// Mean MSP utility per round (0.0 before the first round).
    pub fn mean_utility(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.utility_sum / self.rounds as f64
        }
    }

    /// Mean posted price per round (0.0 before the first round).
    pub fn mean_price(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.price_sum / self.rounds as f64
        }
    }
}

impl PricingEnv {
    /// Creates an environment.
    ///
    /// # Panics
    ///
    /// Panics if `history_length` or `rounds_per_episode` is zero.
    pub fn new(
        game: AotmStackelbergGame,
        history_length: usize,
        rounds_per_episode: usize,
        reward_mode: RewardMode,
        seed: u64,
    ) -> Self {
        assert!(history_length > 0, "history length must be positive");
        assert!(
            rounds_per_episode > 0,
            "rounds per episode must be positive"
        );
        // Per-VMU demand normalisation: the largest demand a VMU can express
        // is its best response at the lowest admissible price (the cost C).
        let (price_lo, _) = game.msp().price_bounds();
        let demand_scale: Vec<f64> = game
            .vmus()
            .iter()
            .map(|v| v.best_response(price_lo, game.link()).max(1e-9))
            .collect();
        // Reference utility for the dense reward: best utility on a coarse grid.
        let (lo, hi) = game.msp().price_bounds();
        let reference_utility = (0..=200)
            .map(|i| {
                let p = lo + (hi - lo) * i as f64 / 200.0;
                game.msp_utility_at(p)
            })
            .fold(f64::MIN, f64::max)
            .max(1e-9);
        Self {
            history_length,
            rounds_per_episode,
            reward_mode,
            reference_utility,
            demand_scale,
            history: VecDeque::with_capacity(history_length),
            round: 0,
            best_utility: 0.0,
            last_outcome: None,
            stats: EpisodeStats::default(),
            rng: StdRng::seed_from_u64(seed),
            game,
        }
    }

    /// The underlying game.
    pub fn game(&self) -> &AotmStackelbergGame {
        &self.game
    }

    /// Rounds per episode (`K`).
    pub fn rounds_per_episode(&self) -> usize {
        self.rounds_per_episode
    }

    /// The outcome of the most recent round, if any.
    pub fn last_outcome(&self) -> Option<&EquilibriumOutcome> {
        self.last_outcome.as_ref()
    }

    /// Best MSP utility observed so far in the current episode (`U_best`).
    pub fn best_utility(&self) -> f64 {
        self.best_utility
    }

    /// Aggregates over the rounds of the current episode.
    pub fn episode_stats(&self) -> &EpisodeStats {
        &self.stats
    }

    /// The reward mode in use.
    pub fn reward_mode(&self) -> RewardMode {
        self.reward_mode
    }

    fn push_round(&mut self, record: RoundRecord) {
        if self.history.len() == self.history_length {
            self.history.pop_front();
        }
        self.history.push_back(record);
    }

    fn random_round(&mut self) -> RoundRecord {
        let (lo, hi) = self.game.msp().price_bounds();
        let price = self.rng.gen_range(lo..=hi);
        let outcome = self.game.outcome_at_price(price);
        RoundRecord {
            price,
            demands_mhz: outcome.demands_mhz.clone(),
            msp_utility: outcome.msp_utility,
        }
    }

    fn observation(&self) -> Vec<f64> {
        let (_, price_hi) = self.game.msp().price_bounds();
        let n = self.game.vmus().len();
        let mut obs = Vec::with_capacity(self.history_length * (1 + n));
        for record in &self.history {
            obs.push(record.price / price_hi);
            for (i, &d) in record.demands_mhz.iter().enumerate() {
                obs.push(d / self.demand_scale[i]);
            }
        }
        obs
    }

    fn reward_for(&self, msp_utility: f64) -> f64 {
        match self.reward_mode {
            RewardMode::Improvement => {
                if msp_utility >= self.best_utility {
                    1.0
                } else {
                    0.0
                }
            }
            RewardMode::NormalizedUtility => msp_utility / self.reference_utility,
        }
    }
}

impl Environment for PricingEnv {
    fn observation_dim(&self) -> usize {
        self.history_length * (1 + self.game.vmus().len())
    }

    fn action_space(&self) -> ActionSpace {
        let (lo, hi) = self.game.msp().price_bounds();
        ActionSpace::scalar(lo, hi)
    }

    fn reset(&mut self) -> Vec<f64> {
        self.history.clear();
        self.round = 0;
        self.best_utility = 0.0;
        self.last_outcome = None;
        self.stats = EpisodeStats::default();
        // Paper: the first L observations are generated randomly.
        for _ in 0..self.history_length {
            let record = self.random_round();
            self.push_round(record);
        }
        self.observation()
    }

    fn reset_with_seed(&mut self, seed: u64) -> Vec<f64> {
        self.rng = StdRng::seed_from_u64(seed);
        self.reset()
    }

    fn step(&mut self, action: &[f64]) -> Step {
        assert!(!action.is_empty(), "pricing action must have one dimension");
        let (lo, hi) = self.game.msp().price_bounds();
        let price = action[0].clamp(lo, hi);
        let outcome = self.game.outcome_at_price(price);
        let reward = self.reward_for(outcome.msp_utility);
        if outcome.msp_utility > self.best_utility {
            self.best_utility = outcome.msp_utility;
        }
        self.stats.rounds += 1;
        self.stats.utility_sum += outcome.msp_utility;
        self.stats.price_sum += price;
        self.stats.final_utility = outcome.msp_utility;
        self.push_round(RoundRecord {
            price,
            demands_mhz: outcome.demands_mhz.clone(),
            msp_utility: outcome.msp_utility,
        });
        self.last_outcome = Some(outcome);
        self.round += 1;
        Step {
            observation: self.observation(),
            reward,
            done: self.round >= self.rounds_per_episode,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;

    fn env(mode: RewardMode) -> PricingEnv {
        let game = AotmStackelbergGame::from_config(&ExperimentConfig::paper_two_vmus());
        PricingEnv::new(game, 4, 10, mode, 7)
    }

    #[test]
    fn observation_dimension_matches_history_and_vmus() {
        let mut e = env(RewardMode::Improvement);
        assert_eq!(e.observation_dim(), 4 * (1 + 2));
        let obs = e.reset();
        assert_eq!(obs.len(), e.observation_dim());
        assert!(obs.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn action_space_is_price_interval() {
        let e = env(RewardMode::Improvement);
        let space = e.action_space();
        assert_eq!(space.low, vec![5.0]);
        assert_eq!(space.high, vec![50.0]);
    }

    #[test]
    fn episode_terminates_after_k_rounds() {
        let mut e = env(RewardMode::Improvement);
        e.reset();
        let mut done = false;
        for k in 0..10 {
            let step = e.step(&[25.0]);
            done = step.done;
            assert_eq!(done, k == 9);
        }
        assert!(done);
    }

    #[test]
    fn improvement_reward_follows_eq_12() {
        let mut e = env(RewardMode::Improvement);
        e.reset();
        // First action always matches or beats the initial best utility of 0.
        let first = e.step(&[25.0]);
        assert_eq!(first.reward, 1.0);
        let good_utility = e.best_utility();
        assert!(good_utility > 0.0);
        // A clearly worse price (demand collapses) must earn zero reward.
        let worse = e.step(&[49.0]);
        assert_eq!(worse.reward, 0.0);
        // Returning to the good price earns the reward again (>= best).
        let again = e.step(&[25.0]);
        assert_eq!(again.reward, 1.0);
        assert!((e.best_utility() - good_utility).abs() < 1e-12);
    }

    #[test]
    fn best_utility_is_monotone_within_episode() {
        let mut e = env(RewardMode::Improvement);
        e.reset();
        let mut last_best = e.best_utility();
        for price in [10.0, 30.0, 20.0, 25.0, 45.0] {
            e.step(&[price]);
            assert!(e.best_utility() >= last_best);
            last_best = e.best_utility();
        }
        assert!(e.last_outcome().is_some());
    }

    #[test]
    fn reset_clears_episode_state() {
        let mut e = env(RewardMode::Improvement);
        e.reset();
        e.step(&[25.0]);
        assert!(e.best_utility() > 0.0);
        e.reset();
        assert_eq!(e.best_utility(), 0.0);
        assert!(e.last_outcome().is_none());
    }

    #[test]
    fn dense_reward_peaks_near_equilibrium_price() {
        let mut e = env(RewardMode::NormalizedUtility);
        e.reset();
        let eq_price = e.game().closed_form_equilibrium().price;
        let near = e.step(&[eq_price]).reward;
        e.reset();
        let far = e.step(&[48.0]).reward;
        assert!(near > far);
        // The reference is a grid maximum, so the true peak can exceed it by a
        // small interpolation margin.
        assert!(near <= 1.05);
        assert!(e.reward_mode() == RewardMode::NormalizedUtility);
    }

    #[test]
    fn out_of_range_actions_are_clamped() {
        let mut e = env(RewardMode::Improvement);
        e.reset();
        e.step(&[1000.0]);
        let outcome = e.last_outcome().unwrap();
        assert!(outcome.price <= 50.0 + 1e-12);
        e.step(&[-3.0]);
        assert!(e.last_outcome().unwrap().price >= 5.0 - 1e-12);
    }

    #[test]
    fn observations_are_bounded_after_normalisation() {
        let mut e = env(RewardMode::Improvement);
        e.reset();
        for price in [5.0, 15.0, 25.0, 35.0, 45.0, 50.0] {
            let step = e.step(&[price]);
            for v in step.observation {
                assert!(
                    (-1e-9..=1.5).contains(&v),
                    "normalised observation {v} out of range"
                );
            }
        }
    }

    #[test]
    fn reset_with_seed_pins_the_warmup_history() {
        let mut e = env(RewardMode::Improvement);
        let a = e.reset_with_seed(123);
        e.step(&[25.0]);
        e.step(&[30.0]);
        // Reseeding replays the exact same random warm-up rounds, while a
        // plain reset continues the stream and produces a different history.
        let b = e.reset_with_seed(123);
        assert_eq!(a, b);
        let c = e.reset();
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "history length must be positive")]
    fn zero_history_rejected() {
        let game = AotmStackelbergGame::from_config(&ExperimentConfig::paper_two_vmus());
        let _ = PricingEnv::new(game, 0, 10, RewardMode::Improvement, 0);
    }
}
