//! Pricing schemes: the learning-based mechanism's baselines (§V-B).
//!
//! The paper compares its DRL-based pricing against a *random* scheme (the
//! MSP draws the price uniformly each round) and a *greedy* scheme (the MSP
//! replays the best price seen in past rounds). This module defines the
//! common [`PricingScheme`] interface, those two baselines, a fixed-price
//! scheme, and the complete-information equilibrium oracle; the trained DRL
//! policy is adapted to the same interface in
//! [`mechanism`](crate::mechanism).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::stackelberg::AotmStackelbergGame;

/// A pricing scheme: a (possibly stateful) rule the MSP uses to post a unit
/// price each game round, learning only from the utilities it observed.
pub trait PricingScheme {
    /// Human-readable name of the scheme (used in experiment output).
    fn name(&self) -> &str;

    /// Returns the price to post in the current round.
    fn propose_price(&mut self, game: &AotmStackelbergGame) -> f64;

    /// Informs the scheme of the utility obtained by its last posted price.
    fn observe_utility(&mut self, price: f64, msp_utility: f64);

    /// Resets any per-episode state.
    fn reset(&mut self);
}

/// Plays the same fixed price every round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedPricing {
    /// The price to post.
    pub price: f64,
}

impl PricingScheme for FixedPricing {
    fn name(&self) -> &str {
        "fixed"
    }

    fn propose_price(&mut self, game: &AotmStackelbergGame) -> f64 {
        let (lo, hi) = game.msp().price_bounds();
        self.price.clamp(lo, hi)
    }

    fn observe_utility(&mut self, _price: f64, _msp_utility: f64) {}

    fn reset(&mut self) {}
}

/// The paper's random baseline: a uniform price in `[C, p_max]` every round.
#[derive(Debug, Clone)]
pub struct RandomPricing {
    rng: StdRng,
    seed: u64,
}

impl RandomPricing {
    /// Creates the scheme with a seed for reproducibility.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }
}

impl PricingScheme for RandomPricing {
    fn name(&self) -> &str {
        "random"
    }

    fn propose_price(&mut self, game: &AotmStackelbergGame) -> f64 {
        let (lo, hi) = game.msp().price_bounds();
        self.rng.gen_range(lo..=hi)
    }

    fn observe_utility(&mut self, _price: f64, _msp_utility: f64) {}

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
    }
}

/// The paper's greedy baseline: explore randomly, but replay the
/// best-performing past price with increasing probability.
#[derive(Debug, Clone)]
pub struct GreedyPricing {
    rng: StdRng,
    seed: u64,
    exploration: f64,
    best: Option<(f64, f64)>,
    rounds_seen: usize,
}

impl GreedyPricing {
    /// Creates a greedy scheme with the given initial exploration probability
    /// (decayed as `exploration / (1 + rounds)`).
    ///
    /// # Panics
    ///
    /// Panics if `exploration` is outside `[0, 1]`.
    pub fn new(seed: u64, exploration: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&exploration),
            "exploration must be in [0, 1]"
        );
        Self {
            rng: StdRng::seed_from_u64(seed),
            seed,
            exploration,
            best: None,
            rounds_seen: 0,
        }
    }

    /// The best `(price, utility)` pair observed so far.
    pub fn best(&self) -> Option<(f64, f64)> {
        self.best
    }
}

impl PricingScheme for GreedyPricing {
    fn name(&self) -> &str {
        "greedy"
    }

    fn propose_price(&mut self, game: &AotmStackelbergGame) -> f64 {
        let (lo, hi) = game.msp().price_bounds();
        let explore_prob = self.exploration / (1.0 + self.rounds_seen as f64).sqrt();
        match self.best {
            Some((price, _)) if self.rng.gen::<f64>() > explore_prob => price,
            _ => self.rng.gen_range(lo..=hi),
        }
    }

    fn observe_utility(&mut self, price: f64, msp_utility: f64) {
        self.rounds_seen += 1;
        if self.best.is_none_or(|(_, u)| msp_utility > u) {
            self.best = Some((price, msp_utility));
        }
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
        self.best = None;
        self.rounds_seen = 0;
    }
}

/// The complete-information oracle: always posts the Stackelberg-equilibrium
/// price (what the learning-based mechanism should converge to).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EquilibriumPricing;

impl PricingScheme for EquilibriumPricing {
    fn name(&self) -> &str {
        "stackelberg-equilibrium"
    }

    fn propose_price(&mut self, game: &AotmStackelbergGame) -> f64 {
        game.closed_form_equilibrium().price
    }

    fn observe_utility(&mut self, _price: f64, _msp_utility: f64) {}

    fn reset(&mut self) {}
}

/// Runs `scheme` for `rounds` rounds on `game` and returns the per-round MSP
/// utility series (the scheme observes its utility after every round).
pub fn run_scheme(
    scheme: &mut dyn PricingScheme,
    game: &AotmStackelbergGame,
    rounds: usize,
) -> Vec<f64> {
    let mut utilities = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let price = scheme.propose_price(game);
        let outcome = game.outcome_at_price(price);
        scheme.observe_utility(price, outcome.msp_utility);
        utilities.push(outcome.msp_utility);
    }
    utilities
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;

    fn game() -> AotmStackelbergGame {
        AotmStackelbergGame::from_config(&ExperimentConfig::paper_two_vmus())
    }

    #[test]
    fn fixed_pricing_clamps_to_bounds() {
        let g = game();
        let mut scheme = FixedPricing { price: 1000.0 };
        assert_eq!(scheme.propose_price(&g), 50.0);
        assert_eq!(scheme.name(), "fixed");
        scheme.observe_utility(50.0, 1.0);
        scheme.reset();
    }

    #[test]
    fn random_pricing_stays_in_bounds_and_is_reproducible() {
        let g = game();
        let mut a = RandomPricing::new(3);
        let mut b = RandomPricing::new(3);
        for _ in 0..50 {
            let pa = a.propose_price(&g);
            let pb = b.propose_price(&g);
            assert_eq!(pa, pb);
            assert!((5.0..=50.0).contains(&pa));
        }
        a.reset();
        let after_reset = a.propose_price(&g);
        let mut fresh = RandomPricing::new(3);
        assert_eq!(after_reset, fresh.propose_price(&g));
    }

    #[test]
    fn greedy_pricing_converges_to_its_best_observation() {
        let g = game();
        let mut scheme = GreedyPricing::new(5, 1.0);
        let utilities = run_scheme(&mut scheme, &g, 300);
        let best_seen = utilities.iter().cloned().fold(f64::MIN, f64::max);
        let (best_price, best_utility) = scheme.best().unwrap();
        assert!((best_utility - best_seen).abs() < 1e-9);
        // After many rounds the scheme mostly replays its best price.
        let replay = scheme.propose_price(&g);
        // Either it replays the best price or it is exploring (rare); accept both
        // but check that the best price is a sensible in-bounds value.
        assert!((5.0..=50.0).contains(&best_price));
        assert!((5.0..=50.0).contains(&replay));
        // The greedy scheme's best utility approaches the equilibrium utility.
        let eq = g.closed_form_equilibrium().msp_utility;
        assert!(
            best_utility > 0.8 * eq,
            "greedy best {best_utility} vs eq {eq}"
        );
    }

    #[test]
    fn greedy_reset_clears_memory() {
        let g = game();
        let mut scheme = GreedyPricing::new(5, 0.5);
        run_scheme(&mut scheme, &g, 10);
        assert!(scheme.best().is_some());
        scheme.reset();
        assert!(scheme.best().is_none());
    }

    #[test]
    #[should_panic(expected = "exploration must be in [0, 1]")]
    fn greedy_rejects_bad_exploration() {
        let _ = GreedyPricing::new(0, 2.0);
    }

    #[test]
    fn equilibrium_oracle_dominates_baselines() {
        let g = game();
        let rounds = 200;
        let eq_mean = mean(&run_scheme(&mut EquilibriumPricing, &g, rounds));
        let random_mean = mean(&run_scheme(&mut RandomPricing::new(11), &g, rounds));
        let greedy_mean = mean(&run_scheme(&mut GreedyPricing::new(11, 1.0), &g, rounds));
        assert!(
            eq_mean >= greedy_mean - 1e-9,
            "eq {eq_mean} vs greedy {greedy_mean}"
        );
        assert!(
            greedy_mean > random_mean,
            "greedy {greedy_mean} vs random {random_mean}"
        );
    }

    #[test]
    fn equilibrium_oracle_matches_closed_form_every_round() {
        let g = game();
        let utilities = run_scheme(&mut EquilibriumPricing, &g, 5);
        let expected = g.closed_form_equilibrium().msp_utility;
        for u in utilities {
            assert!((u - expected).abs() < 1e-9);
        }
    }

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len().max(1) as f64
    }
}
