//! The AoTM-based Stackelberg game between the MSP and the VMUs.
//!
//! This module provides the *complete-information* solution of the game of
//! §III-B: the closed-form equilibrium of Theorems 1–2 extended with the
//! constraints of Problem 2 (aggregate bandwidth cap `B_max`, price cap
//! `p_max`, non-negative demands), a numerical cross-check built on
//! [`vtm_game`], and the [`StackelbergGame`] trait implementation that lets
//! the generic solver and the equilibrium verifier operate on the game.

use vtm_game::optimize::golden_section_max;
use vtm_game::stackelberg::{solve_stackelberg, SolveOptions, StackelbergGame};
use vtm_sim::radio::LinkBudget;

use crate::aotm::spectral_efficiency;
use crate::config::{ExperimentConfig, MarketConfig};
use crate::msp::Msp;
use crate::vmu::VmuProfile;

/// A solved instance of the AoTM Stackelberg game.
#[derive(Debug, Clone, PartialEq)]
pub struct EquilibriumOutcome {
    /// Equilibrium unit price `p*`.
    pub price: f64,
    /// Equilibrium bandwidth demands `b*` (MHz), indexed like the VMU list.
    pub demands_mhz: Vec<f64>,
    /// MSP utility at the equilibrium.
    pub msp_utility: f64,
    /// Per-VMU utilities at the equilibrium.
    pub vmu_utilities: Vec<f64>,
    /// Whether the aggregate bandwidth cap `B_max` binds at the equilibrium.
    pub bandwidth_cap_binding: bool,
    /// Whether the price cap `p_max` binds at the equilibrium.
    pub price_cap_binding: bool,
}

impl EquilibriumOutcome {
    /// Total bandwidth sold (MHz).
    pub fn total_bandwidth_mhz(&self) -> f64 {
        self.demands_mhz.iter().sum()
    }

    /// Sum of the VMU utilities.
    pub fn total_vmu_utility(&self) -> f64 {
        self.vmu_utilities.iter().sum()
    }

    /// Average VMU utility (0 when there are no VMUs).
    pub fn average_vmu_utility(&self) -> f64 {
        if self.vmu_utilities.is_empty() {
            0.0
        } else {
            self.total_vmu_utility() / self.vmu_utilities.len() as f64
        }
    }

    /// Average bandwidth purchased per VMU (MHz; 0 when there are no VMUs).
    pub fn average_bandwidth_mhz(&self) -> f64 {
        if self.demands_mhz.is_empty() {
            0.0
        } else {
            self.total_bandwidth_mhz() / self.demands_mhz.len() as f64
        }
    }
}

/// The AoTM Stackelberg game instance: the MSP, the VMU population and the
/// inter-RSU link they migrate over.
#[derive(Debug, Clone, PartialEq)]
pub struct AotmStackelbergGame {
    msp: Msp,
    vmus: Vec<VmuProfile>,
    link: LinkBudget,
}

impl AotmStackelbergGame {
    /// Creates a game instance.
    ///
    /// # Panics
    ///
    /// Panics if `vmus` is empty or a profile is invalid.
    pub fn new(market: MarketConfig, vmus: Vec<VmuProfile>, link: LinkBudget) -> Self {
        assert!(!vmus.is_empty(), "the game requires at least one VMU");
        for vmu in &vmus {
            vmu.validate().expect("VMU profiles must be valid");
        }
        Self {
            msp: Msp::new(market),
            vmus,
            link,
        }
    }

    /// Builds the game directly from an [`ExperimentConfig`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not validate.
    pub fn from_config(config: &ExperimentConfig) -> Self {
        config
            .validate()
            .expect("experiment configuration must be valid");
        Self::new(config.market, config.vmus.clone(), config.link)
    }

    /// The MSP (leader).
    pub fn msp(&self) -> &Msp {
        &self.msp
    }

    /// The VMUs (followers).
    pub fn vmus(&self) -> &[VmuProfile] {
        &self.vmus
    }

    /// The inter-RSU link budget.
    pub fn link(&self) -> &LinkBudget {
        &self.link
    }

    /// Spectral efficiency of the inter-RSU link.
    pub fn spectral_efficiency(&self) -> f64 {
        spectral_efficiency(&self.link)
    }

    /// Best-response demand profile of every VMU at `price` (Eq. (8), clamped
    /// at zero), *without* the aggregate cap projection.
    pub fn best_responses(&self, price: f64) -> Vec<f64> {
        self.vmus
            .iter()
            .map(|v| v.best_response(price, &self.link))
            .collect()
    }

    /// Demand profile at `price` with the aggregate `B_max` cap enforced by
    /// proportional scaling (the feasibility projection of Problem 2).
    pub fn capped_demands(&self, price: f64) -> Vec<f64> {
        let mut demands = self.best_responses(price);
        let total: f64 = demands.iter().sum();
        let cap = self.msp.max_bandwidth_mhz();
        if total > cap && total > 0.0 {
            let scale = cap / total;
            for d in &mut demands {
                *d *= scale;
            }
        }
        demands
    }

    /// MSP utility at `price` when VMUs play their (capped) best responses.
    pub fn msp_utility_at(&self, price: f64) -> f64 {
        self.msp.utility(price, &self.capped_demands(price))
    }

    /// Evaluates a full outcome (demands and utilities) at an arbitrary price.
    /// This is what the learning-based mechanism and the baseline pricing
    /// schemes use to score a posted price.
    pub fn outcome_at_price(&self, price: f64) -> EquilibriumOutcome {
        let demands = self.capped_demands(price);
        let uncapped_total: f64 = self.best_responses(price).iter().sum();
        let vmu_utilities: Vec<f64> = self
            .vmus
            .iter()
            .zip(demands.iter())
            .map(|(v, &b)| v.utility(b, price, &self.link))
            .collect();
        EquilibriumOutcome {
            price,
            msp_utility: self.msp.utility(price, &demands),
            bandwidth_cap_binding: uncapped_total > self.msp.max_bandwidth_mhz() + 1e-12,
            price_cap_binding: (price - self.msp.max_price()).abs() < 1e-9,
            demands_mhz: demands,
            vmu_utilities,
        }
    }

    /// Closed-form Stackelberg equilibrium (Theorems 1 and 2) extended with
    /// the constraints of Problem 2.
    ///
    /// The leader's objective is piecewise smooth in the price: the pieces are
    /// delimited by the VMUs' reservation prices (above which a VMU stops
    /// buying) and, within a piece, the unconstrained optimum is the Theorem-2
    /// expression evaluated on the piece's active set, possibly raised to the
    /// cap-clearing price when aggregate demand would exceed `B_max`. The
    /// exact equilibrium is therefore found by enumerating, per piece, the
    /// interior optimum, the cap-clearing price and the piece boundaries, and
    /// selecting the candidate with the highest leader utility.
    pub fn closed_form_equilibrium(&self) -> EquilibriumOutcome {
        let (price_lo, price_hi) = self.msp.price_bounds();
        let mut breakpoints: Vec<f64> = self
            .vmus
            .iter()
            .map(|v| v.reservation_price(&self.link).clamp(price_lo, price_hi))
            .collect();
        breakpoints.push(price_lo);
        breakpoints.push(price_hi);
        breakpoints.sort_by(|a, b| a.partial_cmp(b).expect("prices are finite"));
        breakpoints.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

        let mut candidates: Vec<f64> = breakpoints.clone();
        for segment in breakpoints.windows(2) {
            let (a, b) = (segment[0], segment[1]);
            if b - a < 1e-12 {
                continue;
            }
            let mid = 0.5 * (a + b);
            let active: Vec<VmuProfile> = self
                .vmus
                .iter()
                .copied()
                .filter(|v| v.best_response(mid, &self.link) > 0.0)
                .collect();
            if active.is_empty() {
                continue;
            }
            let interior = self.msp.interior_optimal_price(&active, &self.link);
            let cap_clearing = self.msp.cap_clearing_price(&active, &self.link);
            candidates.push(interior.max(cap_clearing).clamp(a, b));
        }

        let mut best: Option<(f64, f64)> = None;
        for &price in &candidates {
            let utility = self.msp_utility_at(price);
            if best.is_none_or(|(_, u)| utility > u) {
                best = Some((price, utility));
            }
        }
        let (price, _) = best.unwrap_or((price_hi, 0.0));
        self.outcome_at_price(price)
    }

    /// Numerical equilibrium computed with the generic solver of [`vtm_game`]
    /// (golden-section over the price with the follower stage re-solved per
    /// candidate). Used to cross-check the closed form and for configurations
    /// where the cap makes the closed form only piecewise valid.
    pub fn numerical_equilibrium(&self) -> EquilibriumOutcome {
        let options = SolveOptions::default();
        let solution = solve_stackelberg(self, &options)
            .expect("the AoTM game has finite utilities on its price interval");
        // Refine around the numerical argmax with a fine golden-section pass
        // directly on the outcome evaluation to reduce solver tolerance noise.
        let (lo, hi) = self.msp.price_bounds();
        let refined = golden_section_max(|p| self.msp_utility_at(p), lo, hi, 1e-10, 500)
            .map(|m| m.argmax)
            .unwrap_or(solution.leader_action);
        self.outcome_at_price(refined)
    }
}

impl StackelbergGame for AotmStackelbergGame {
    fn num_followers(&self) -> usize {
        self.vmus.len()
    }

    fn leader_action_bounds(&self) -> (f64, f64) {
        self.msp.price_bounds()
    }

    fn follower_strategy_bounds(&self, _follower: usize) -> (f64, f64) {
        (0.0, self.msp.max_bandwidth_mhz())
    }

    fn follower_utility(
        &self,
        follower: usize,
        leader_action: f64,
        own: f64,
        _others: &[f64],
    ) -> f64 {
        self.vmus[follower].utility(own, leader_action, &self.link)
    }

    fn follower_best_response(&self, follower: usize, leader_action: f64, _others: &[f64]) -> f64 {
        self.vmus[follower]
            .best_response(leader_action, &self.link)
            .min(self.msp.max_bandwidth_mhz())
    }

    fn leader_utility(&self, leader_action: f64, followers: &[f64]) -> f64 {
        self.msp.utility(leader_action, followers)
    }

    fn project_followers(&self, _leader_action: f64, profile: &mut [f64]) {
        let total: f64 = profile.iter().sum();
        let cap = self.msp.max_bandwidth_mhz();
        if total > cap && total > 0.0 {
            let scale = cap / total;
            for b in profile {
                *b *= scale;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtm_game::equilibrium::verify_equilibrium;

    fn paper_game() -> AotmStackelbergGame {
        AotmStackelbergGame::from_config(&ExperimentConfig::paper_two_vmus())
    }

    #[test]
    fn closed_form_reproduces_paper_price_and_utility() {
        let game = paper_game();
        let eq = game.closed_form_equilibrium();
        // Paper §V-B: at unit cost 5 the MSP prices around 25.
        assert!((eq.price - 25.0).abs() < 1.0, "price {}", eq.price);
        assert!(eq.msp_utility > 0.0);
        assert!(!eq.bandwidth_cap_binding);
        assert!(!eq.price_cap_binding);
        assert_eq!(eq.demands_mhz.len(), 2);
        assert!(eq.demands_mhz.iter().all(|&b| b > 0.0));
        // VMU with the larger twin buys less net immersion headroom: demand of
        // VMU 0 (200 MB) is below that of VMU 1 (100 MB).
        assert!(eq.demands_mhz[0] < eq.demands_mhz[1]);
    }

    #[test]
    fn paper_fig3c_two_vmu_msp_utility_is_reproduced() {
        // Fig. 3(c): with two identical VMUs (100 MB, α = 5) the MSP utility is 7.03.
        let game = AotmStackelbergGame::from_config(&ExperimentConfig::paper_n_vmus(2));
        let eq = game.closed_form_equilibrium();
        assert!(
            (eq.msp_utility - 7.03).abs() < 0.05,
            "MSP utility {} should be ≈ 7.03",
            eq.msp_utility
        );
    }

    #[test]
    fn closed_form_matches_numerical_equilibrium() {
        let game = paper_game();
        let closed = game.closed_form_equilibrium();
        let numeric = game.numerical_equilibrium();
        assert!(
            (closed.price - numeric.price).abs() < 1e-2,
            "closed {} vs numeric {}",
            closed.price,
            numeric.price
        );
        assert!((closed.msp_utility - numeric.msp_utility).abs() < 1e-3);
    }

    #[test]
    fn equilibrium_verifies_against_definition_one() {
        let game = paper_game();
        let eq = game.closed_form_equilibrium();
        let report = verify_equilibrium(
            &game,
            eq.price,
            &eq.demands_mhz,
            301,
            &SolveOptions::default(),
        );
        assert!(
            report.is_equilibrium(1e-2),
            "no profitable deviation expected: {report:?}"
        );
    }

    #[test]
    fn price_increases_with_unit_cost() {
        let mut last_price = 0.0;
        for cost in [5.0, 6.0, 7.0, 8.0, 9.0] {
            let mut cfg = ExperimentConfig::paper_two_vmus();
            cfg.market.unit_cost = cost;
            let eq = AotmStackelbergGame::from_config(&cfg).closed_form_equilibrium();
            assert!(eq.price > last_price, "price must rise with cost");
            last_price = eq.price;
        }
        // Paper: price ≈ 34 at unit cost 9.
        assert!(
            (last_price - 34.0).abs() < 1.0,
            "price at C=9 is {last_price}"
        );
    }

    #[test]
    fn total_bandwidth_decreases_with_unit_cost() {
        let mut last = f64::INFINITY;
        for cost in [5.0, 6.0, 7.0, 8.0, 9.0] {
            let mut cfg = ExperimentConfig::paper_two_vmus();
            cfg.market.unit_cost = cost;
            let eq = AotmStackelbergGame::from_config(&cfg).closed_form_equilibrium();
            assert!(eq.total_bandwidth_mhz() < last);
            last = eq.total_bandwidth_mhz();
        }
    }

    #[test]
    fn msp_utility_increases_with_vmu_count() {
        let mut last = 0.0;
        for n in 2..=6 {
            let eq = AotmStackelbergGame::from_config(&ExperimentConfig::paper_n_vmus(n))
                .closed_form_equilibrium();
            assert!(eq.msp_utility > last, "utility must grow with N");
            last = eq.msp_utility;
        }
    }

    #[test]
    fn bandwidth_cap_binds_when_small() {
        let mut cfg = ExperimentConfig::paper_n_vmus(6);
        cfg.market.max_bandwidth_mhz = 0.5;
        let game = AotmStackelbergGame::from_config(&cfg);
        let eq = game.closed_form_equilibrium();
        assert!(eq.total_bandwidth_mhz() <= 0.5 + 1e-9);
        // With a binding cap the price rises above the unconstrained optimum.
        let unconstrained = AotmStackelbergGame::from_config(&ExperimentConfig::paper_n_vmus(6))
            .closed_form_equilibrium();
        assert!(eq.price >= unconstrained.price);
        assert!(eq.bandwidth_cap_binding || eq.price > unconstrained.price);
    }

    #[test]
    fn price_cap_binds_when_low() {
        let mut cfg = ExperimentConfig::paper_two_vmus();
        cfg.market.max_price = 10.0;
        let eq = AotmStackelbergGame::from_config(&cfg).closed_form_equilibrium();
        assert!((eq.price - 10.0).abs() < 1e-9);
        assert!(eq.price_cap_binding);
    }

    #[test]
    fn outcome_statistics_are_consistent() {
        let game = paper_game();
        let eq = game.outcome_at_price(20.0);
        assert!((eq.total_bandwidth_mhz() - eq.demands_mhz.iter().sum::<f64>()).abs() < 1e-12);
        assert!(
            (eq.average_vmu_utility() * eq.vmu_utilities.len() as f64 - eq.total_vmu_utility())
                .abs()
                < 1e-12
        );
        assert!(eq.average_bandwidth_mhz() > 0.0);
    }

    #[test]
    fn very_high_price_drives_demand_to_zero() {
        let game = paper_game();
        let outcome = game.outcome_at_price(49.9);
        // Reservation prices of the paper's VMUs are well below 49.9 for the
        // 200 MB twin, so at least that VMU abstains.
        assert!(outcome.demands_mhz[0] < 1e-9 || outcome.demands_mhz[0] < outcome.demands_mhz[1]);
    }

    #[test]
    #[should_panic(expected = "at least one VMU")]
    fn empty_vmu_list_rejected() {
        let _ = AotmStackelbergGame::new(MarketConfig::default(), vec![], LinkBudget::default());
    }
}
