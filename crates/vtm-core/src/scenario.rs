//! Trace-driven scenario engine: coupling the [`vtm_sim`] substrate into DRL
//! training.
//!
//! The paper prices twin migration under *dynamic* vehicular conditions, but
//! the plain [`PricingEnv`](crate::env::PricingEnv) trains against a static
//! VMU population over a fixed link. This module closes the sim↔DRL gap: a
//! [`Scenario`] (one of five named presets) generates a reproducible vehicle
//! [`Trace`], an RSU topology and a mobility model, and a [`SimPricingEnv`]
//! plays the paper's per-round pricing game against the *live* simulator
//! state:
//!
//! 1. **mobility** — each pricing round advances the scenario clock by one
//!    slot and moves every entered vehicle with the scenario's mobility
//!    model;
//! 2. **channel / radio** — each active VMU's link quality is derived from
//!    its distance to the serving RSU
//!    ([`LinkBudget::with_distance`]), so spectral efficiency rises and falls
//!    as vehicles approach and leave coverage;
//! 3. **migration / freshness** — VMUs best-respond with Eq. (8) on their own
//!    link, demands are projected onto the round's bandwidth budget, and the
//!    achieved Age of Twin Migration (Eq. (1)) feeds the freshness feature of
//!    the next observation;
//! 4. **population dynamics** — trips enter the scenario at their trace entry
//!    times and leave when they drive off the corridor, so the demand side of
//!    the market grows and shrinks within an episode.
//!
//! [`SimPricingEnv`] implements the same [`Environment`] trait as the static
//! environment, so the existing [`Trainer`] / [`PpoAgent`] pipeline
//! trains on it unchanged — [`train_scenario_parallel`] is the scenario
//! counterpart of
//! [`IncentiveMechanism::train_episodes_parallel`](crate::mechanism::IncentiveMechanism::train_episodes_parallel)
//! and inherits its bit-determinism across collector thread counts.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vtm_rl::env::{ActionSpace, Environment, Step};
use vtm_rl::ppo::PpoAgent;
use vtm_rl::trainer::Trainer;
use vtm_sim::mobility::{
    AnyMobility, ConstantVelocity, MobilityModel, PerturbedHighway, Position, RandomWaypoint,
    Velocity,
};
use vtm_sim::radio::LinkBudget;
use vtm_sim::rsu::{Corridor, Rsu, RsuId};
use vtm_sim::trace::{Range, Trace, TraceConfig, Trip};

use crate::aotm::{aotm, data_units_from_mb};
use crate::config::{DrlConfig, MarketConfig};
use crate::env::{EpisodeStats, RewardMode};
use crate::mechanism::{EpisodeLog, TrainingHistory};
use crate::vmu::VmuProfile;

/// Number of observation features recorded per history round:
/// `[price, sold bandwidth, active fraction, channel quality, freshness,
/// budget]`, each normalised to O(1).
pub const OBS_FEATURES: usize = 6;

/// Seed-decorrelation constant shared with the rollout collector.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// The named scenario presets of the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// Fast traffic along a long RSU corridor — the canonical hand-over
    /// workload.
    Highway,
    /// Slow random-waypoint traffic over a 3×3 RSU grid with coverage holes.
    UrbanGrid,
    /// A dense burst of commuters; mid-episode the bandwidth budget collapses
    /// (congestion surge) and the price must adapt.
    RushHourSurge,
    /// Few vehicles, huge RSU spacing, weak channels.
    SparseRural,
    /// Highway traffic with a rival MSP undercutting the agent's price
    /// (Bertrand competition, the paper's future-work extension).
    MultiMspCompetition,
}

impl ScenarioKind {
    /// Every named scenario, in canonical order.
    pub const ALL: [ScenarioKind; 5] = [
        ScenarioKind::Highway,
        ScenarioKind::UrbanGrid,
        ScenarioKind::RushHourSurge,
        ScenarioKind::SparseRural,
        ScenarioKind::MultiMspCompetition,
    ];

    /// The kebab-case name used by CLIs and result files.
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioKind::Highway => "highway",
            ScenarioKind::UrbanGrid => "urban-grid",
            ScenarioKind::RushHourSurge => "rush-hour-surge",
            ScenarioKind::SparseRural => "sparse-rural",
            ScenarioKind::MultiMspCompetition => "multi-msp",
        }
    }

    /// Parses a kebab-case scenario name (as produced by
    /// [`ScenarioKind::name`]).
    pub fn from_name(name: &str) -> Option<ScenarioKind> {
        ScenarioKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// One-line description for `--list`-style output.
    pub fn description(&self) -> &'static str {
        match self {
            ScenarioKind::Highway => "fast corridor traffic, frequent RSU hand-overs",
            ScenarioKind::UrbanGrid => "slow random-waypoint traffic over a 3x3 RSU grid",
            ScenarioKind::RushHourSurge => "commuter burst with a mid-episode bandwidth surge",
            ScenarioKind::SparseRural => "three vehicles, 2.5 km RSU spacing, weak channels",
            ScenarioKind::MultiMspCompetition => "highway traffic with an undercutting rival MSP",
        }
    }
}

impl std::fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// RSU topology of a scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Topology {
    /// A linear corridor of RSUs along the x axis.
    Road {
        /// Number of RSUs.
        rsu_count: usize,
        /// Spacing between consecutive RSUs (metres).
        spacing_m: f64,
        /// Coverage radius of each RSU (metres).
        coverage_m: f64,
    },
    /// A rectangular grid of RSUs (cols × rows).
    Grid {
        /// RSUs per row.
        cols: usize,
        /// Number of rows.
        rows: usize,
        /// Spacing between neighbouring RSUs (metres).
        spacing_m: f64,
        /// Coverage radius of each RSU (metres).
        coverage_m: f64,
    },
}

impl Topology {
    /// Builds the corridor, giving every RSU `bandwidth_hz` of sellable
    /// spectrum.
    pub fn build(&self, bandwidth_hz: f64) -> Corridor {
        match *self {
            Topology::Road {
                rsu_count,
                spacing_m,
                coverage_m,
            } => Corridor::along_road(rsu_count, spacing_m, coverage_m, bandwidth_hz, 100.0),
            Topology::Grid {
                cols,
                rows,
                spacing_m,
                coverage_m,
            } => {
                assert!(cols > 0 && rows > 0, "grid must be non-empty");
                let rsus = (0..rows)
                    .flat_map(|r| (0..cols).map(move |c| (r, c)))
                    .enumerate()
                    .map(|(i, (r, c))| {
                        Rsu::new(
                            RsuId(i),
                            Position::new(c as f64 * spacing_m, r as f64 * spacing_m),
                            coverage_m,
                            bandwidth_hz,
                            100.0,
                        )
                    })
                    .collect();
                Corridor::new(rsus)
            }
        }
    }

    /// The x extent of the topology (metres), used to decide when a vehicle
    /// has driven off a road corridor.
    pub fn x_extent_m(&self) -> f64 {
        match *self {
            Topology::Road {
                rsu_count,
                spacing_m,
                ..
            } => (rsu_count.saturating_sub(1)) as f64 * spacing_m,
            Topology::Grid {
                cols, spacing_m, ..
            } => (cols.saturating_sub(1)) as f64 * spacing_m,
        }
    }

    /// Coverage radius shared by every RSU of the topology (metres).
    pub fn coverage_m(&self) -> f64 {
        match *self {
            Topology::Road { coverage_m, .. } | Topology::Grid { coverage_m, .. } => coverage_m,
        }
    }
}

/// A time window during which the sellable bandwidth budget is scaled down
/// (network congestion from background traffic).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurgeWindow {
    /// Window start (scenario seconds).
    pub start_s: f64,
    /// Window end (scenario seconds).
    pub end_s: f64,
    /// Budget multiplier inside the window (`0 < factor <= 1`).
    pub budget_factor: f64,
}

impl SurgeWindow {
    /// Whether the window is active at scenario time `now_s`.
    pub fn contains(&self, now_s: f64) -> bool {
        now_s >= self.start_s && now_s < self.end_s
    }
}

/// A rival MSP competing with the learning agent on price.
///
/// The rival plays the myopic Bertrand response: it undercuts the agent's
/// posted price by a small margin whenever doing so is profitable (the
/// undercut price still exceeds its own unit cost), and abstains otherwise.
/// Each VMU then buys from the provider that is cheaper *for it*, where a
/// per-VMU loyalty factor (deterministic in the trip id) slightly biases the
/// comparison — so market share shifts smoothly instead of all-or-nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RivalMsp {
    /// The rival's unit transmission cost (it never prices below this).
    pub unit_cost: f64,
    /// Multiplicative undercut applied to the agent's price (e.g. `0.97`).
    pub undercut: f64,
}

impl RivalMsp {
    /// The rival's posted price in response to the agent posting `price`;
    /// `None` when undercutting would be unprofitable and the rival abstains.
    pub fn response(&self, price: f64) -> Option<f64> {
        let undercut = price * self.undercut;
        (undercut > self.unit_cost).then_some(undercut.max(self.unit_cost))
    }

    /// Loyalty factor of trip `id` towards the agent: the VMU buys from the
    /// agent as long as the agent's price is below `loyalty * rival_price`.
    /// Spread deterministically over `[0.95, 1.10]` by a golden-ratio hash.
    pub fn loyalty(id: usize) -> f64 {
        0.95 + 0.15 * unit_hash(id, 0)
    }
}

/// A named, fully specified scenario: trace distributions, topology, mobility,
/// market and timing.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Which named preset this is.
    pub kind: ScenarioKind,
    /// Trace distributions driving the VMU population.
    pub trace: TraceConfig,
    /// RSU topology.
    pub topology: Topology,
    /// Mobility model moving the vehicles.
    pub mobility: AnyMobility,
    /// Market parameters; `max_bandwidth_mhz` doubles as the base per-round
    /// bandwidth budget.
    pub market: MarketConfig,
    /// Reference link budget; per-VMU links rescale its distance.
    pub link: LinkBudget,
    /// Wall-clock seconds of scenario time per pricing round.
    pub slot_s: f64,
    /// Optional congestion window shrinking the bandwidth budget.
    pub surge: Option<SurgeWindow>,
    /// Optional rival MSP (Bertrand competition).
    pub rival: Option<RivalMsp>,
}

impl Scenario {
    /// Builds the named preset.
    pub fn preset(kind: ScenarioKind) -> Self {
        match kind {
            ScenarioKind::Highway => Self {
                kind,
                trace: TraceConfig {
                    trips: 8,
                    entry_time_s: Range::new(0.0, 20.0),
                    entry_x_m: Range::new(0.0, 800.0),
                    speed_mps: Range::new(20.0, 35.0),
                    twin_size_mb: Range::new(100.0, 300.0),
                    alpha: Range::new(5.0, 20.0),
                    seed: 101,
                },
                topology: Topology::Road {
                    rsu_count: 8,
                    spacing_m: 800.0,
                    coverage_m: 500.0,
                },
                mobility: PerturbedHighway::default().into(),
                market: MarketConfig {
                    max_bandwidth_mhz: 20.0,
                    ..MarketConfig::default()
                },
                link: LinkBudget::default(),
                slot_s: 5.0,
                surge: None,
                rival: None,
            },
            ScenarioKind::UrbanGrid => Self {
                kind,
                trace: TraceConfig {
                    trips: 10,
                    entry_time_s: Range::new(0.0, 30.0),
                    entry_x_m: Range::new(0.0, 1200.0),
                    speed_mps: Range::new(8.0, 15.0),
                    twin_size_mb: Range::new(100.0, 250.0),
                    alpha: Range::new(5.0, 15.0),
                    seed: 202,
                },
                topology: Topology::Grid {
                    cols: 3,
                    rows: 3,
                    spacing_m: 600.0,
                    coverage_m: 400.0,
                },
                mobility: RandomWaypoint::new(1200.0, 1200.0, 8.0, 15.0).into(),
                market: MarketConfig {
                    max_bandwidth_mhz: 15.0,
                    ..MarketConfig::default()
                },
                link: LinkBudget::default(),
                slot_s: 4.0,
                surge: None,
                rival: None,
            },
            ScenarioKind::RushHourSurge => Self {
                kind,
                trace: TraceConfig {
                    trips: 14,
                    entry_time_s: Range::new(0.0, 10.0),
                    entry_x_m: Range::new(0.0, 400.0),
                    speed_mps: Range::new(10.0, 25.0),
                    twin_size_mb: Range::new(150.0, 300.0),
                    alpha: Range::new(8.0, 20.0),
                    seed: 303,
                },
                topology: Topology::Road {
                    rsu_count: 6,
                    spacing_m: 700.0,
                    coverage_m: 450.0,
                },
                mobility: PerturbedHighway {
                    speed_jitter: 2.0,
                    min_speed: 3.0,
                    max_speed: 20.0,
                }
                .into(),
                market: MarketConfig {
                    max_bandwidth_mhz: 12.0,
                    ..MarketConfig::default()
                },
                link: LinkBudget::default(),
                slot_s: 2.0,
                surge: Some(SurgeWindow {
                    start_s: 30.0,
                    end_s: 90.0,
                    budget_factor: 0.4,
                }),
                rival: None,
            },
            ScenarioKind::SparseRural => Self {
                kind,
                trace: TraceConfig {
                    trips: 3,
                    entry_time_s: Range::new(0.0, 30.0),
                    entry_x_m: Range::new(0.0, 2000.0),
                    speed_mps: Range::new(25.0, 35.0),
                    twin_size_mb: Range::new(100.0, 200.0),
                    alpha: Range::new(5.0, 10.0),
                    seed: 404,
                },
                topology: Topology::Road {
                    rsu_count: 5,
                    spacing_m: 2500.0,
                    coverage_m: 900.0,
                },
                mobility: ConstantVelocity.into(),
                market: MarketConfig {
                    max_bandwidth_mhz: 8.0,
                    ..MarketConfig::default()
                },
                link: LinkBudget::default(),
                slot_s: 10.0,
                surge: None,
                rival: None,
            },
            ScenarioKind::MultiMspCompetition => Self {
                rival: Some(RivalMsp {
                    unit_cost: 8.0,
                    undercut: 0.97,
                }),
                kind,
                trace: TraceConfig {
                    trips: 6,
                    seed: 505,
                    ..Scenario::preset(ScenarioKind::Highway).trace
                },
                ..Self::preset(ScenarioKind::Highway)
            },
        }
    }

    /// The sellable bandwidth budget (MHz) at scenario time `now_s`: the base
    /// budget, scaled down inside an active surge window.
    pub fn bandwidth_budget_at(&self, now_s: f64) -> f64 {
        let base = self.market.max_bandwidth_mhz;
        match self.surge {
            Some(w) if w.contains(now_s) => base * w.budget_factor,
            _ => base,
        }
    }

    /// Creates a [`SimPricingEnv`] for this scenario.
    ///
    /// The environment's trace is derived from both the scenario's trace seed
    /// and `seed`, so replicas with different seeds see different (but
    /// reproducible) traffic.
    ///
    /// # Panics
    ///
    /// Panics if `history_length` or `rounds_per_episode` is zero.
    pub fn env(
        &self,
        history_length: usize,
        rounds_per_episode: usize,
        reward_mode: RewardMode,
        seed: u64,
    ) -> SimPricingEnv {
        SimPricingEnv::new(
            self.clone(),
            history_length,
            rounds_per_episode,
            reward_mode,
            seed,
        )
    }
}

/// One completed pricing round of a [`SimPricingEnv`], kept for logging,
/// experiment reports and the determinism tests.
#[derive(Debug, Clone, PartialEq)]
pub struct SimRoundRecord {
    /// Round index within the episode (0-based, warm-up rounds excluded).
    pub round: usize,
    /// Scenario clock at the end of the round (seconds).
    pub clock_s: f64,
    /// Price posted by the agent (clamped).
    pub price: f64,
    /// Price posted by the rival MSP, if one is present and participating.
    pub rival_price: Option<f64>,
    /// VMUs on the road during the round.
    pub active_vmus: usize,
    /// VMUs that bought a positive bandwidth from the agent.
    pub served_vmus: usize,
    /// RSU hand-overs observed during the round.
    pub migrations: usize,
    /// Bandwidth budget of the round (MHz).
    pub budget_mhz: f64,
    /// Total bandwidth sold by the agent after the budget projection (MHz).
    pub total_demand_mhz: f64,
    /// The agent MSP's utility for the round.
    pub msp_utility: f64,
    /// Mean achieved AoTM over the served VMUs (seconds); `None` when no VMU
    /// bought bandwidth.
    pub mean_aotm_s: Option<f64>,
    /// Mean spectral efficiency over the active VMUs' links (bit/s/Hz).
    pub mean_spectral_efficiency: f64,
}

/// Live state of one vehicle inside the environment.
#[derive(Debug, Clone)]
struct VehicleState {
    trip: Trip,
    position: Position,
    velocity: Velocity,
    profile: VmuProfile,
    serving: Option<RsuId>,
}

/// The trace-driven pricing environment: the paper's per-round Stackelberg
/// game played against live simulator state. See the module docs for the
/// data flow.
#[derive(Debug, Clone)]
pub struct SimPricingEnv {
    scenario: Scenario,
    history_length: usize,
    rounds_per_episode: usize,
    reward_mode: RewardMode,
    corridor: Corridor,
    trace: Trace,
    trace_seed: u64,
    vehicles: Vec<VehicleState>,
    clock_s: f64,
    round: usize,
    best_utility: f64,
    se_reference: f64,
    history: VecDeque<[f64; OBS_FEATURES]>,
    round_log: Vec<SimRoundRecord>,
    stats: EpisodeStats,
    rng: StdRng,
}

/// Everything the market clearing of one round produces.
struct RoundOutcome {
    record: SimRoundRecord,
    /// Best achievable agent utility over a price grid at the round's state
    /// (only computed for the dense reward mode).
    reference_utility: f64,
}

impl SimPricingEnv {
    /// Creates an environment for `scenario`.
    ///
    /// # Panics
    ///
    /// Panics if `history_length` or `rounds_per_episode` is zero.
    pub fn new(
        scenario: Scenario,
        history_length: usize,
        rounds_per_episode: usize,
        reward_mode: RewardMode,
        seed: u64,
    ) -> Self {
        assert!(history_length > 0, "history length must be positive");
        assert!(
            rounds_per_episode > 0,
            "rounds per episode must be positive"
        );
        scenario.market.validate().expect("market must be valid");
        let trace_seed = scenario.trace.seed ^ seed.wrapping_mul(GOLDEN);
        let trace = Trace::generate(&TraceConfig {
            seed: trace_seed,
            ..scenario.trace
        });
        let corridor = scenario
            .topology
            .build(scenario.market.max_bandwidth_mhz * 1e6);
        let se_reference = scenario.link.spectral_efficiency();
        let mut env = Self {
            history_length,
            rounds_per_episode,
            reward_mode,
            corridor,
            trace,
            trace_seed,
            vehicles: Vec::new(),
            clock_s: 0.0,
            round: 0,
            best_utility: 0.0,
            se_reference,
            history: VecDeque::with_capacity(history_length),
            round_log: Vec::new(),
            stats: EpisodeStats::default(),
            rng: StdRng::seed_from_u64(seed),
            scenario,
        };
        env.spawn_vehicles();
        env
    }

    /// The scenario the environment plays.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The generated trace driving the population.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The RSU topology.
    pub fn corridor(&self) -> &Corridor {
        &self.corridor
    }

    /// Scenario clock (seconds since episode start, including warm-up).
    pub fn clock_s(&self) -> f64 {
        self.clock_s
    }

    /// Per-round records of the current episode (warm-up rounds excluded).
    pub fn round_log(&self) -> &[SimRoundRecord] {
        &self.round_log
    }

    /// Best agent utility observed so far in the episode.
    pub fn best_utility(&self) -> f64 {
        self.best_utility
    }

    /// Aggregates over the episode's completed rounds.
    pub fn episode_stats(&self) -> &EpisodeStats {
        &self.stats
    }

    /// Rounds per episode (`K`).
    pub fn rounds_per_episode(&self) -> usize {
        self.rounds_per_episode
    }

    /// Number of vehicles currently on the road.
    pub fn active_vmus(&self) -> usize {
        self.active_indices().len()
    }

    fn spawn_vehicles(&mut self) {
        self.vehicles = self
            .trace
            .trips
            .iter()
            .map(|trip| {
                let (size_mb, alpha) = trip.market_profile();
                VehicleState {
                    position: Position::new(trip.entry_x_m, self.initial_y(trip.id)),
                    velocity: self.initial_velocity(trip.speed_mps),
                    profile: VmuProfile::new(trip.id, size_mb, alpha),
                    serving: None,
                    trip: *trip,
                }
            })
            .collect();
    }

    /// Initial y coordinate: zero on a road, spread deterministically over
    /// the grid height on a grid.
    fn initial_y(&self, id: usize) -> f64 {
        match self.scenario.topology {
            Topology::Road { .. } => 0.0,
            Topology::Grid {
                rows, spacing_m, ..
            } => {
                let height = (rows.saturating_sub(1)) as f64 * spacing_m;
                height * unit_hash(id, 0x5EED)
            }
        }
    }

    /// Initial velocity: cruise speed along the road, or zero for waypoint
    /// mobility (which then picks a waypoint on the first advance).
    fn initial_velocity(&self, speed_mps: f64) -> Velocity {
        match self.scenario.mobility {
            AnyMobility::Waypoint(_) => Velocity::default(),
            _ => Velocity::new(speed_mps, 0.0),
        }
    }

    /// Indices of vehicles that have entered and are still on the map.
    fn active_indices(&self) -> Vec<usize> {
        let x_max = self.scenario.topology.x_extent_m() + self.scenario.topology.coverage_m();
        let x_min = -self.scenario.topology.coverage_m();
        self.vehicles
            .iter()
            .enumerate()
            .filter(|(_, v)| {
                v.trip.has_entered(self.clock_s) && v.position.x >= x_min && v.position.x <= x_max
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Advances the scenario clock by one slot, moving every entered vehicle.
    fn advance_world(&mut self) {
        let dt = self.scenario.slot_s;
        let now = self.clock_s;
        for vehicle in &mut self.vehicles {
            if vehicle.trip.has_entered(now) {
                let (p, v) = self.scenario.mobility.advance(
                    vehicle.position,
                    vehicle.velocity,
                    dt,
                    &mut self.rng,
                );
                vehicle.position = p;
                vehicle.velocity = v;
            }
        }
        self.clock_s = now + dt;
    }

    /// Market clearing at `price` for a fixed round state: each VMU that
    /// buys from the agent best-responds on its own link, then the demand
    /// profile is projected onto the round's bandwidth budget.
    fn clear_market(
        &self,
        price: f64,
        actives: &[(usize, VmuProfile, LinkBudget)],
        budget_mhz: f64,
    ) -> Vec<f64> {
        let mut demands: Vec<f64> = actives
            .iter()
            .map(|(id, profile, link)| {
                if self.buys_from_agent(*id, price) {
                    profile.best_response(price, link)
                } else {
                    0.0
                }
            })
            .collect();
        project_onto_budget(&mut demands, budget_mhz);
        demands
    }

    /// The agent MSP's utility of selling `demands` at `price` (Eq. (4)).
    fn agent_utility(&self, price: f64, demands: &[f64]) -> f64 {
        demands
            .iter()
            .map(|b| (price - self.scenario.market.unit_cost) * b)
            .sum()
    }

    /// Whether the VMU of trip `id` buys from the agent at `price` (as
    /// opposed to the rival, when one is present and participating).
    fn buys_from_agent(&self, id: usize, price: f64) -> bool {
        match self.scenario.rival.and_then(|r| r.response(price)) {
            Some(rival_price) => price <= rival_price * RivalMsp::loyalty(id),
            None => true,
        }
    }

    /// Plays one pricing round at `price` against the current world state.
    fn play_round(&mut self, price: f64) -> RoundOutcome {
        let active = self.active_indices();
        let mut migrations = 0usize;
        let mut actives: Vec<(usize, VmuProfile, LinkBudget)> = Vec::with_capacity(active.len());
        for &i in &active {
            let position = self.vehicles[i].position;
            let serving = self
                .corridor
                .covering(&position)
                .unwrap_or_else(|| self.corridor.nearest(&position));
            let serving_id = serving.id();
            if self.vehicles[i].serving.is_some_and(|s| s != serving_id) {
                migrations += 1;
            }
            self.vehicles[i].serving = Some(serving_id);
            // Effective migration-link quality degrades with the vehicle's
            // distance from its serving RSU (the twin syncs over the
            // access + backhaul path). Clamp below so the SNR stays finite.
            let distance = serving.distance_to(&position).max(25.0);
            let link = self.scenario.link.with_distance(distance);
            actives.push((self.vehicles[i].trip.id, self.vehicles[i].profile, link));
        }

        let budget_mhz = self.scenario.bandwidth_budget_at(self.clock_s);
        let rival_price = self.scenario.rival.and_then(|r| r.response(price));
        let demands = self.clear_market(price, &actives, budget_mhz);

        let total_demand_mhz: f64 = demands.iter().sum();
        let msp_utility = self.agent_utility(price, &demands);
        let served: Vec<(usize, f64)> = demands
            .iter()
            .enumerate()
            .filter(|(_, &b)| b > 0.0)
            .map(|(j, &b)| (j, b))
            .collect();
        let mean_aotm_s = if served.is_empty() {
            None
        } else {
            let sum: f64 = served
                .iter()
                .map(|&(j, b)| {
                    let (_, profile, link) = &actives[j];
                    aotm(data_units_from_mb(profile.data_size_mb), b, link).0
                })
                .sum();
            Some(sum / served.len() as f64)
        };
        let mean_spectral_efficiency = if actives.is_empty() {
            0.0
        } else {
            actives
                .iter()
                .map(|(_, _, link)| link.spectral_efficiency())
                .sum::<f64>()
                / actives.len() as f64
        };

        // Dense-reward reference: the best utility on a coarse price grid at
        // this exact round state.
        let reference_utility = if self.reward_mode == RewardMode::NormalizedUtility {
            let (lo, hi) = self.price_bounds();
            (0..=32)
                .map(|g| {
                    let p = lo + (hi - lo) * g as f64 / 32.0;
                    self.agent_utility(p, &self.clear_market(p, &actives, budget_mhz))
                })
                .fold(f64::MIN, f64::max)
                .max(1e-9)
        } else {
            1.0
        };

        RoundOutcome {
            record: SimRoundRecord {
                round: self.round,
                clock_s: self.clock_s,
                price,
                rival_price,
                active_vmus: actives.len(),
                served_vmus: served.len(),
                migrations,
                budget_mhz,
                total_demand_mhz,
                msp_utility,
                mean_aotm_s,
                mean_spectral_efficiency,
            },
            reference_utility,
        }
    }

    fn price_bounds(&self) -> (f64, f64) {
        (
            self.scenario.market.unit_cost,
            self.scenario.market.max_price,
        )
    }

    fn observation_features(&self, record: &SimRoundRecord) -> [f64; OBS_FEATURES] {
        let (_, price_hi) = self.price_bounds();
        let base_budget = self.scenario.market.max_bandwidth_mhz.max(1e-9);
        let population = self.trace.len().max(1) as f64;
        let freshness = match record.mean_aotm_s {
            Some(a) if a.is_finite() => 1.0 / (1.0 + a),
            _ => 0.0,
        };
        [
            record.price / price_hi,
            record.total_demand_mhz / base_budget,
            record.active_vmus as f64 / population,
            record.mean_spectral_efficiency / self.se_reference.max(1e-9),
            freshness,
            record.budget_mhz / base_budget,
        ]
    }

    fn push_history(&mut self, features: [f64; OBS_FEATURES]) {
        if self.history.len() == self.history_length {
            self.history.pop_front();
        }
        self.history.push_back(features);
    }

    fn observation(&self) -> Vec<f64> {
        self.history.iter().flatten().copied().collect()
    }

    /// Reward for a completed round. The paper's sparse indicator (Eq. (12))
    /// is only granted when at least one VMU actually traded — an empty
    /// market earns nothing.
    fn reward_for(&self, outcome: &RoundOutcome) -> f64 {
        if outcome.record.served_vmus == 0 {
            return 0.0;
        }
        match self.reward_mode {
            RewardMode::Improvement => {
                if outcome.record.msp_utility >= self.best_utility {
                    1.0
                } else {
                    0.0
                }
            }
            RewardMode::NormalizedUtility => outcome.record.msp_utility / outcome.reference_utility,
        }
    }
}

/// Golden-ratio hash of a trip id (xor-ed with `salt` so distinct uses are
/// decorrelated), mapped onto `[0, 1)`.
fn unit_hash(id: usize, salt: u64) -> f64 {
    let h = ((id as u64 + 1) ^ salt).wrapping_mul(GOLDEN);
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Scales `demands` proportionally so their sum fits within `budget_mhz`.
fn project_onto_budget(demands: &mut [f64], budget_mhz: f64) {
    let total: f64 = demands.iter().sum();
    if total > budget_mhz && total > 0.0 {
        let scale = budget_mhz / total;
        for d in demands {
            *d *= scale;
        }
    }
}

impl Environment for SimPricingEnv {
    fn observation_dim(&self) -> usize {
        self.history_length * OBS_FEATURES
    }

    fn action_space(&self) -> ActionSpace {
        let (lo, hi) = self.price_bounds();
        ActionSpace::scalar(lo, hi)
    }

    fn reset(&mut self) -> Vec<f64> {
        self.clock_s = 0.0;
        self.round = 0;
        self.best_utility = 0.0;
        self.history.clear();
        self.round_log.clear();
        self.stats = EpisodeStats::default();
        self.spawn_vehicles();
        // Warm-up: L rounds at random prices advance the world so the first
        // observation reflects real scenario dynamics (the paper fills the
        // first L history entries with randomly generated rounds).
        let (lo, hi) = self.price_bounds();
        for _ in 0..self.history_length {
            let price = self.rng.gen_range(lo..=hi);
            self.advance_world();
            let outcome = self.play_round(price);
            let features = self.observation_features(&outcome.record);
            self.push_history(features);
        }
        self.observation()
    }

    fn reset_with_seed(&mut self, seed: u64) -> Vec<f64> {
        self.rng = StdRng::seed_from_u64(seed);
        let trace_seed = self.scenario.trace.seed ^ seed.wrapping_mul(GOLDEN);
        if trace_seed != self.trace_seed {
            self.trace_seed = trace_seed;
            self.trace = Trace::generate(&TraceConfig {
                seed: trace_seed,
                ..self.scenario.trace
            });
        }
        self.reset()
    }

    fn step(&mut self, action: &[f64]) -> Step {
        assert!(!action.is_empty(), "pricing action must have one dimension");
        let (lo, hi) = self.price_bounds();
        let price = action[0].clamp(lo, hi);
        self.advance_world();
        let outcome = self.play_round(price);
        let reward = self.reward_for(&outcome);
        if outcome.record.msp_utility > self.best_utility {
            self.best_utility = outcome.record.msp_utility;
        }
        self.stats.rounds += 1;
        self.stats.utility_sum += outcome.record.msp_utility;
        self.stats.price_sum += price;
        self.stats.final_utility = outcome.record.msp_utility;
        let features = self.observation_features(&outcome.record);
        self.push_history(features);
        self.round_log.push(outcome.record);
        self.round += 1;
        Step {
            observation: self.observation(),
            reward,
            done: self.round >= self.rounds_per_episode,
        }
    }
}

/// The artefacts of one scenario training run.
#[derive(Debug, Clone)]
pub struct ScenarioTrainingRun {
    /// The trained agent.
    pub agent: PpoAgent,
    /// Per-episode training logs (same schema as the static mechanism).
    pub history: TrainingHistory,
    /// The final collection round's per-replica round records — the
    /// scenario-side evidence the determinism tests compare bit-for-bit.
    pub round_logs: Vec<Vec<SimRoundRecord>>,
}

/// Trains a PPO agent on `num_envs` replicas of a scenario environment — the
/// scenario counterpart of
/// [`IncentiveMechanism::train_episodes_parallel`](crate::mechanism::IncentiveMechanism::train_episodes_parallel),
/// and like it a thin shim over the builder-style
/// [`Trainer`], so the scenario and static paths
/// share one seed schedule and one training loop.
///
/// Each collection round pins every replica's trace and RNG stream to
/// `(drl.seed, round, replica)`, so the result is bit-identical for any
/// `num_threads` (`0` = one worker per core). `episodes` is rounded up to a
/// whole number of collection rounds of `num_envs` episodes each.
///
/// # Panics
///
/// Panics if `num_envs` is zero or the DRL configuration is invalid.
pub fn train_scenario_parallel(
    scenario: &Scenario,
    drl: &DrlConfig,
    reward_mode: RewardMode,
    episodes: usize,
    num_envs: usize,
    num_threads: usize,
) -> ScenarioTrainingRun {
    assert!(num_envs > 0, "need at least one environment replica");
    drl.validate().expect("DRL configuration must be valid");
    let rounds = drl.rounds_per_episode;
    let env = scenario.env(drl.history_length, rounds, reward_mode, drl.seed);
    let ppo = drl.to_ppo_config(env.observation_dim());
    let mut agent = PpoAgent::new(ppo, env.action_space());
    let mut history = TrainingHistory::default();
    let mut round_logs: Vec<Vec<SimRoundRecord>> = vec![Vec::new(); num_envs];
    Trainer::for_env(env)
        .episodes(episodes)
        .collectors(num_envs)
        .threads(num_threads)
        .max_steps(rounds)
        .seed(drl.seed)
        .on_episode(|event| {
            let stats = event.env.episode_stats();
            history.episodes.push(EpisodeLog {
                episode: event.episode,
                episode_return: event.episode_return,
                mean_msp_utility: stats.mean_utility(),
                final_msp_utility: stats.final_utility,
                best_msp_utility: event.env.best_utility(),
                mean_price: stats.mean_price(),
            });
            // The last write per replica wins: the run reports the final
            // collection round's per-replica records.
            round_logs[event.replica] = event.env.round_log().to_vec();
        })
        .run(&mut agent)
        .unwrap_or_else(|e| panic!("scenario training failed: {e}"));
    ScenarioTrainingRun {
        agent,
        history,
        round_logs,
    }
}

/// Evaluates a (deterministic) policy on a scenario environment for one
/// episode of up to `rounds` rounds, returning the per-round records.
pub fn evaluate_scenario(
    agent: &PpoAgent,
    env: &mut SimPricingEnv,
    rounds: usize,
) -> Vec<SimRoundRecord> {
    let rounds = rounds.min(env.rounds_per_episode());
    let mut obs = env.reset();
    for _ in 0..rounds {
        let action = agent.act_deterministic(&obs);
        let step = env.step(&action);
        obs = step.observation;
        if step.done {
            break;
        }
    }
    env.round_log().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(kind: ScenarioKind) -> SimPricingEnv {
        Scenario::preset(kind).env(4, 10, RewardMode::Improvement, 7)
    }

    #[test]
    fn every_preset_round_trips_its_name() {
        for kind in ScenarioKind::ALL {
            assert_eq!(ScenarioKind::from_name(kind.name()), Some(kind));
            assert!(!kind.description().is_empty());
            assert_eq!(format!("{kind}"), kind.name());
            let scenario = Scenario::preset(kind);
            assert_eq!(scenario.kind, kind);
            assert!(scenario.market.validate().is_ok());
        }
        assert_eq!(ScenarioKind::from_name("nope"), None);
    }

    #[test]
    fn observation_dimension_is_history_times_features() {
        let mut e = env(ScenarioKind::Highway);
        assert_eq!(e.observation_dim(), 4 * OBS_FEATURES);
        let obs = e.reset();
        assert_eq!(obs.len(), e.observation_dim());
        assert!(obs.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn episode_terminates_after_k_rounds() {
        let mut e = env(ScenarioKind::Highway);
        e.reset();
        for k in 0..10 {
            let step = e.step(&[25.0]);
            assert_eq!(step.done, k == 9);
        }
        assert_eq!(e.round_log().len(), 10);
        assert_eq!(e.episode_stats().rounds, 10);
    }

    #[test]
    fn world_advances_and_market_trades() {
        let mut e = env(ScenarioKind::Highway);
        e.reset();
        let mut sold = 0.0;
        let mut migrations = 0;
        for _ in 0..10 {
            e.step(&[12.0]);
        }
        for record in e.round_log() {
            assert!(record.clock_s > 0.0);
            assert!(record.active_vmus <= e.trace().len());
            assert!(record.total_demand_mhz <= record.budget_mhz + 1e-9);
            assert!(record.msp_utility.is_finite());
            sold += record.total_demand_mhz;
            migrations += record.migrations;
        }
        assert!(sold > 0.0, "a moderate price must sell bandwidth");
        // 10 rounds x 5 s at ~25 m/s crosses at least one 800 m RSU boundary.
        assert!(migrations > 0, "mobility must trigger hand-overs");
        let last = e.round_log().last().unwrap();
        assert!(last.mean_aotm_s.unwrap() > 0.0);
        assert!(last.mean_spectral_efficiency > 0.0);
    }

    #[test]
    fn surge_window_shrinks_the_budget() {
        let scenario = Scenario::preset(ScenarioKind::RushHourSurge);
        let surge = scenario.surge.unwrap();
        let before = scenario.bandwidth_budget_at(surge.start_s - 1.0);
        let during = scenario.bandwidth_budget_at(0.5 * (surge.start_s + surge.end_s));
        let after = scenario.bandwidth_budget_at(surge.end_s + 1.0);
        assert!(during < before);
        assert_eq!(before, after);
        assert!((during - before * surge.budget_factor).abs() < 1e-12);
    }

    #[test]
    fn rival_competition_splits_or_takes_the_market() {
        let mut e = env(ScenarioKind::MultiMspCompetition);
        e.reset();
        // At a high agent price the rival undercuts and takes (most of) the
        // market; near the rival's cost the agent keeps it.
        e.step(&[40.0]);
        let contested = e.round_log().last().unwrap().clone();
        assert!(contested.rival_price.is_some());
        assert!(contested.rival_price.unwrap() < 40.0);
        let mut cheap = env(ScenarioKind::MultiMspCompetition);
        cheap.reset();
        cheap.step(&[8.0]);
        let kept = cheap.round_log().last().unwrap().clone();
        // Undercutting 8.0 would price below the rival's unit cost of 8.0.
        assert!(kept.rival_price.is_none());
        assert!(kept.served_vmus >= contested.served_vmus);
    }

    #[test]
    fn rival_loyalty_is_deterministic_and_bounded() {
        for id in 0..50 {
            let l = RivalMsp::loyalty(id);
            assert!((0.95..=1.10).contains(&l));
            assert_eq!(l, RivalMsp::loyalty(id));
        }
    }

    #[test]
    fn sparse_rural_has_weaker_channels_than_highway() {
        let mut rural = env(ScenarioKind::SparseRural);
        let mut highway = env(ScenarioKind::Highway);
        rural.reset();
        highway.reset();
        for _ in 0..6 {
            rural.step(&[10.0]);
            highway.step(&[10.0]);
        }
        let mean_se = |e: &SimPricingEnv| {
            let log = e.round_log();
            log.iter().map(|r| r.mean_spectral_efficiency).sum::<f64>() / log.len() as f64
        };
        assert!(mean_se(&rural) < mean_se(&highway));
    }

    #[test]
    fn grid_scenario_keeps_vehicles_active() {
        let mut e = env(ScenarioKind::UrbanGrid);
        e.reset();
        for _ in 0..10 {
            e.step(&[10.0]);
        }
        let last = e.round_log().last().unwrap();
        assert_eq!(last.active_vmus, e.trace().len());
    }

    #[test]
    fn reset_with_seed_reproduces_an_episode_exactly() {
        let mut e = env(ScenarioKind::Highway);
        e.reset_with_seed(99);
        for p in [10.0, 20.0, 15.0] {
            e.step(&[p]);
        }
        let first = e.round_log().to_vec();
        e.reset();
        e.step(&[10.0]);
        let replay_obs = e.reset_with_seed(99);
        for p in [10.0, 20.0, 15.0] {
            e.step(&[p]);
        }
        assert_eq!(first, e.round_log());
        // And a different seed gives a different trace/trajectory.
        let mut other = env(ScenarioKind::Highway);
        let other_obs = other.reset_with_seed(100);
        assert_ne!(replay_obs, other_obs);
    }

    #[test]
    fn improvement_reward_requires_a_trade() {
        // All trips enter at t = 30 s: with 5 s slots and one warm-up round,
        // the first agent rounds face an empty market and must earn nothing.
        let mut scenario = Scenario::preset(ScenarioKind::Highway);
        scenario.trace.entry_time_s = Range::constant(30.0);
        let mut e = scenario.env(1, 10, RewardMode::Improvement, 7);
        e.reset();
        let empty = e.step(&[12.0]);
        assert_eq!(e.round_log().last().unwrap().active_vmus, 0);
        assert_eq!(empty.reward, 0.0, "an empty market earns no reward");
        let mut traded_reward = None;
        for _ in 0..6 {
            let step = e.step(&[12.0]);
            if e.round_log().last().unwrap().served_vmus > 0 {
                traded_reward = Some(step.reward);
                break;
            }
        }
        assert_eq!(traded_reward, Some(1.0), "the first trade beats best = 0");
        assert!(e.best_utility() > 0.0);
    }

    #[test]
    fn dense_reward_is_normalised_to_the_round_optimum() {
        let mut e =
            Scenario::preset(ScenarioKind::Highway).env(2, 8, RewardMode::NormalizedUtility, 3);
        e.reset();
        for p in [8.0, 12.0, 16.0, 20.0, 30.0] {
            let step = e.step(&[p]);
            assert!(step.reward.is_finite());
            // The reference is a grid maximum, so a price between grid
            // points can beat it by a small interpolation margin.
            assert!(step.reward <= 1.05, "reward {} > 1.05", step.reward);
            assert!(step.reward >= 0.0);
        }
    }

    #[test]
    fn parallel_scenario_training_is_thread_count_invariant() {
        let drl = DrlConfig {
            episodes: 4,
            rounds_per_episode: 8,
            learning_rate: 3e-4,
            seed: 21,
            ..DrlConfig::default()
        };
        let scenario = Scenario::preset(ScenarioKind::Highway);
        let a = train_scenario_parallel(&scenario, &drl, RewardMode::Improvement, 4, 4, 1);
        let b = train_scenario_parallel(&scenario, &drl, RewardMode::Improvement, 4, 4, 4);
        assert_eq!(a.history.episodes.len(), 4);
        assert_eq!(a.round_logs, b.round_logs);
        for (x, y) in a.history.episodes.iter().zip(b.history.episodes.iter()) {
            assert_eq!(x.episode_return, y.episode_return);
            assert_eq!(x.mean_msp_utility, y.mean_msp_utility);
        }
    }

    #[test]
    fn evaluate_scenario_reports_round_records() {
        let drl = DrlConfig {
            episodes: 2,
            rounds_per_episode: 6,
            learning_rate: 3e-4,
            seed: 5,
            ..DrlConfig::default()
        };
        let scenario = Scenario::preset(ScenarioKind::Highway);
        let run = train_scenario_parallel(&scenario, &drl, RewardMode::Improvement, 2, 2, 1);
        let mut env = scenario.env(4, 6, RewardMode::Improvement, 77);
        let records = evaluate_scenario(&run.agent, &mut env, 6);
        assert_eq!(records.len(), 6);
        assert!(records.iter().all(|r| r.price >= 5.0 && r.price <= 50.0));
    }

    #[test]
    #[should_panic(expected = "history length must be positive")]
    fn zero_history_rejected() {
        let _ = Scenario::preset(ScenarioKind::Highway).env(0, 5, RewardMode::Improvement, 0);
    }
}
