//! Age of Twin Migration (AoTM) and the immersion it drives.
//!
//! §III-A of the paper defines AoTM as the time elapsed between the
//! generation of the first VT block and the reception of the last one:
//! `A_n = D_n / γ_n` with `γ_n = b_n · log2(1 + ρ h0 d^{-ε} / N0)` (Eq. (1)).
//! The immersion a VMU derives from a fresh migration is
//! `G_n = α_n · ln(1 + 1 / A_n)`.
//!
//! Bandwidth is expressed in MHz and data sizes in *data units* of
//! [`DATA_UNIT_MB`] megabytes (hundreds of MB),
//! which is the normalisation under which the paper's reported equilibrium
//! values are reproduced exactly.

use vtm_sim::radio::LinkBudget;

use crate::config::DATA_UNIT_MB;

/// Age of Twin Migration in the paper's (dimensionless) time units.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct AgeOfTwinMigration(pub f64);

impl AgeOfTwinMigration {
    /// Whether the migration completes in finite time.
    pub fn is_finite(&self) -> bool {
        self.0.is_finite()
    }
}

impl std::fmt::Display for AgeOfTwinMigration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AoTM({:.4})", self.0)
    }
}

/// Spectral efficiency `log2(1 + ρ h0 d^{-ε} / N0)` of the inter-RSU link.
///
/// This is the factor the paper multiplies by the purchased bandwidth to
/// obtain the migration task's transmission rate.
pub fn spectral_efficiency(link: &LinkBudget) -> f64 {
    link.spectral_efficiency()
}

/// Converts a twin size in megabytes to the data units used by the game's
/// closed-form expressions (hundreds of megabytes).
pub fn data_units_from_mb(size_mb: f64) -> f64 {
    size_mb / DATA_UNIT_MB
}

/// AoTM of migrating `data_units` of twin state with `bandwidth_mhz` of
/// purchased bandwidth over `link` (Eq. (1)).
///
/// Returns an infinite age when the bandwidth is zero or negative — the
/// migration never completes, which is exactly how the immersion function
/// treats it (no immersion).
pub fn aotm(data_units: f64, bandwidth_mhz: f64, link: &LinkBudget) -> AgeOfTwinMigration {
    if bandwidth_mhz <= 0.0 || data_units <= 0.0 {
        return AgeOfTwinMigration(if data_units <= 0.0 {
            0.0
        } else {
            f64::INFINITY
        });
    }
    let rate = bandwidth_mhz * spectral_efficiency(link);
    AgeOfTwinMigration(data_units / rate)
}

/// Immersion `G_n = α_n · ln(1 + 1 / A_n)` obtained by a VMU whose migration
/// finished with age `age`.
///
/// An infinite age yields zero immersion; an age of zero (no data to move)
/// yields unbounded immersion, so callers should ensure `data_units > 0`.
///
/// # Panics
///
/// Panics if `alpha` is not positive.
pub fn immersion(alpha: f64, age: AgeOfTwinMigration) -> f64 {
    assert!(alpha > 0.0, "immersion coefficient must be positive");
    if !age.0.is_finite() {
        return 0.0;
    }
    if age.0 <= 0.0 {
        return f64::INFINITY;
    }
    alpha * (1.0 + 1.0 / age.0).ln()
}

/// Convenience: immersion of VMU `n` as a function of its purchased bandwidth,
/// combining [`aotm`] and [`immersion`].
pub fn immersion_from_bandwidth(
    alpha: f64,
    data_units: f64,
    bandwidth_mhz: f64,
    link: &LinkBudget,
) -> f64 {
    immersion(alpha, aotm(data_units, bandwidth_mhz, link))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> LinkBudget {
        LinkBudget::default()
    }

    #[test]
    fn aotm_formula_matches_hand_computation() {
        let l = link();
        let se = spectral_efficiency(&l);
        let a = aotm(2.0, 10.0, &l);
        assert!((a.0 - 2.0 / (10.0 * se)).abs() < 1e-12);
        assert!(a.is_finite());
    }

    #[test]
    fn aotm_is_infinite_without_bandwidth() {
        let a = aotm(2.0, 0.0, &link());
        assert!(!a.is_finite());
        assert_eq!(immersion(5.0, a), 0.0);
    }

    #[test]
    fn aotm_decreases_with_bandwidth_and_increases_with_data() {
        let l = link();
        assert!(aotm(2.0, 20.0, &l).0 < aotm(2.0, 10.0, &l).0);
        assert!(aotm(3.0, 10.0, &l).0 > aotm(2.0, 10.0, &l).0);
    }

    #[test]
    fn immersion_is_monotone_in_bandwidth() {
        let l = link();
        let g1 = immersion_from_bandwidth(5.0, 2.0, 1.0, &l);
        let g2 = immersion_from_bandwidth(5.0, 2.0, 2.0, &l);
        let g3 = immersion_from_bandwidth(5.0, 2.0, 4.0, &l);
        assert!(g1 < g2 && g2 < g3);
        assert!(g1 > 0.0);
    }

    #[test]
    fn immersion_scales_linearly_with_alpha() {
        let l = link();
        let base = immersion_from_bandwidth(5.0, 2.0, 1.0, &l);
        let double = immersion_from_bandwidth(10.0, 2.0, 1.0, &l);
        assert!((double - 2.0 * base).abs() < 1e-12);
    }

    #[test]
    fn immersion_has_diminishing_returns() {
        // Concavity in bandwidth: equal bandwidth increments yield shrinking
        // immersion gains.
        let l = link();
        let g1 = immersion_from_bandwidth(5.0, 2.0, 1.0, &l);
        let g2 = immersion_from_bandwidth(5.0, 2.0, 2.0, &l);
        let g3 = immersion_from_bandwidth(5.0, 2.0, 3.0, &l);
        assert!(g2 - g1 > g3 - g2, "marginal immersion must decrease");
    }

    #[test]
    fn data_unit_conversion() {
        assert!((data_units_from_mb(200.0) - 2.0).abs() < 1e-12);
        assert!((data_units_from_mb(50.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_data_migrates_instantly() {
        let a = aotm(0.0, 10.0, &link());
        assert_eq!(a.0, 0.0);
        assert_eq!(immersion(5.0, a), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "immersion coefficient must be positive")]
    fn non_positive_alpha_panics() {
        let _ = immersion(0.0, AgeOfTwinMigration(1.0));
    }

    #[test]
    fn display_formats() {
        let a = AgeOfTwinMigration(0.12345);
        assert!(format!("{a}").contains("AoTM"));
    }
}
