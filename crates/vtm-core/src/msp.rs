//! The Metaverse Service Provider: the leader of the Stackelberg game.
//!
//! The MSP owns the RSUs' bandwidth, posts a unit price `p ∈ [C, p_max]` and
//! earns `U_s(p) = Σ_n (p − C) · b_n` (Eq. (4)) subject to the aggregate
//! bandwidth cap `Σ_n b_n ≤ B_max` (Problem 2). Theorem 2 gives the interior
//! optimum `p* = sqrt(C · log2(1+SNR) · Σα_n / ΣD_n)` when every VMU is active
//! and the cap does not bind.

use vtm_sim::radio::LinkBudget;

use crate::aotm::spectral_efficiency;
use crate::config::MarketConfig;
use crate::vmu::VmuProfile;

/// The MSP's market position: its cost and the market bounds it must respect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Msp {
    market: MarketConfig,
}

impl Msp {
    /// Creates an MSP from the market configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`MarketConfig::validate`]).
    pub fn new(market: MarketConfig) -> Self {
        market
            .validate()
            .expect("market configuration must be valid");
        Self { market }
    }

    /// The market configuration.
    pub fn market(&self) -> &MarketConfig {
        &self.market
    }

    /// Unit transmission cost `C`.
    pub fn unit_cost(&self) -> f64 {
        self.market.unit_cost
    }

    /// Maximum unit price `p_max`.
    pub fn max_price(&self) -> f64 {
        self.market.max_price
    }

    /// Maximum total bandwidth `B_max` (MHz).
    pub fn max_bandwidth_mhz(&self) -> f64 {
        self.market.max_bandwidth_mhz
    }

    /// Feasible price interval `[C, p_max]`.
    pub fn price_bounds(&self) -> (f64, f64) {
        (self.market.unit_cost, self.market.max_price)
    }

    /// MSP utility `U_s` of Eq. (4) for a given price and demand profile.
    pub fn utility(&self, price: f64, demands: &[f64]) -> f64 {
        demands
            .iter()
            .map(|b| (price - self.market.unit_cost) * b)
            .sum()
    }

    /// MSP utility when every VMU best-responds to `price` (substituting
    /// Eq. (8) into Eq. (4), the expression differentiated in Theorem 2).
    pub fn utility_at_price(&self, price: f64, vmus: &[VmuProfile], link: &LinkBudget) -> f64 {
        let demands: Vec<f64> = vmus.iter().map(|v| v.best_response(price, link)).collect();
        self.utility(price, &demands)
    }

    /// Total bandwidth demanded by best-responding VMUs at `price` (MHz).
    pub fn total_demand(&self, price: f64, vmus: &[VmuProfile], link: &LinkBudget) -> f64 {
        vmus.iter().map(|v| v.best_response(price, link)).sum()
    }

    /// The interior optimal price of Theorem 2 assuming every VMU is active
    /// and the bandwidth cap does not bind:
    /// `p* = sqrt(C · log2(1+SNR) · Σα_n / ΣD_n)`.
    ///
    /// # Panics
    ///
    /// Panics if `vmus` is empty.
    pub fn interior_optimal_price(&self, vmus: &[VmuProfile], link: &LinkBudget) -> f64 {
        assert!(!vmus.is_empty(), "at least one VMU is required");
        let sum_alpha: f64 = vmus.iter().map(|v| v.alpha).sum();
        let sum_data: f64 = vmus.iter().map(|v| v.data_units()).sum();
        (self.market.unit_cost * spectral_efficiency(link) * sum_alpha / sum_data).sqrt()
    }

    /// The lowest price at which the aggregate best-response demand of the
    /// given (active) VMUs fits within `B_max`:
    /// `p_cap = Σα_n / (B_max + ΣD_n / log2(1+SNR))`.
    ///
    /// Any price at or above this value satisfies the bandwidth constraint of
    /// Problem 2 (demand is decreasing in price).
    ///
    /// # Panics
    ///
    /// Panics if `vmus` is empty.
    pub fn cap_clearing_price(&self, vmus: &[VmuProfile], link: &LinkBudget) -> f64 {
        assert!(!vmus.is_empty(), "at least one VMU is required");
        let sum_alpha: f64 = vmus.iter().map(|v| v.alpha).sum();
        let sum_data: f64 = vmus.iter().map(|v| v.data_units()).sum();
        sum_alpha / (self.market.max_bandwidth_mhz + sum_data / spectral_efficiency(link))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtm_game::optimize::is_concave_on;

    fn setup() -> (Msp, Vec<VmuProfile>, LinkBudget) {
        let msp = Msp::new(MarketConfig::default());
        let vmus = vec![
            VmuProfile::new(0, 200.0, 5.0),
            VmuProfile::new(1, 100.0, 5.0),
        ];
        (msp, vmus, LinkBudget::default())
    }

    #[test]
    fn accessors_expose_market() {
        let (msp, _, _) = setup();
        assert_eq!(msp.unit_cost(), 5.0);
        assert_eq!(msp.max_price(), 50.0);
        assert_eq!(msp.max_bandwidth_mhz(), 50.0);
        assert_eq!(msp.price_bounds(), (5.0, 50.0));
        assert_eq!(msp.market().unit_cost, 5.0);
    }

    #[test]
    #[should_panic(expected = "market configuration must be valid")]
    fn invalid_market_rejected() {
        let _ = Msp::new(MarketConfig {
            unit_cost: 10.0,
            max_bandwidth_mhz: 50.0,
            max_price: 5.0,
        });
    }

    #[test]
    fn utility_formula() {
        let (msp, _, _) = setup();
        assert!((msp.utility(25.0, &[0.2, 0.1]) - 20.0 * 0.3).abs() < 1e-12);
        assert_eq!(msp.utility(5.0, &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn interior_price_matches_theorem_two() {
        let (msp, vmus, link) = setup();
        let se = spectral_efficiency(&link);
        let expected = (5.0 * se * 10.0 / 3.0_f64).sqrt();
        let p = msp.interior_optimal_price(&vmus, &link);
        assert!((p - expected).abs() < 1e-12);
        // The paper reports a price of about 25 at unit cost 5.
        assert!((p - 25.0).abs() < 1.0, "p* = {p}");
    }

    #[test]
    fn interior_price_is_first_order_optimal() {
        let (msp, vmus, link) = setup();
        let p_star = msp.interior_optimal_price(&vmus, &link);
        let h = 1e-5;
        let up = msp.utility_at_price(p_star + h, &vmus, &link);
        let down = msp.utility_at_price(p_star - h, &vmus, &link);
        let at = msp.utility_at_price(p_star, &vmus, &link);
        assert!(at >= up && at >= down, "p* must be a local maximum");
    }

    #[test]
    fn leader_utility_is_concave_in_price() {
        let (msp, vmus, link) = setup();
        // Concave on the region where both VMUs are active.
        let cap = vmus
            .iter()
            .map(|v| v.reservation_price(&link))
            .fold(f64::INFINITY, f64::min);
        assert!(is_concave_on(
            |p| msp.utility_at_price(p, &vmus, &link),
            6.0,
            cap * 0.95,
            40,
            1e-6
        ));
    }

    #[test]
    fn cap_clearing_price_balances_demand() {
        let (msp, vmus, link) = setup();
        let p_cap = msp.cap_clearing_price(&vmus, &link);
        let demand = msp.total_demand(p_cap, &vmus, &link);
        assert!((demand - msp.max_bandwidth_mhz()).abs() < 1e-9);
        // A slightly higher price must satisfy the cap strictly.
        assert!(msp.total_demand(p_cap * 1.01, &vmus, &link) < msp.max_bandwidth_mhz());
    }

    #[test]
    fn total_demand_decreases_with_price() {
        let (msp, vmus, link) = setup();
        assert!(msp.total_demand(10.0, &vmus, &link) > msp.total_demand(20.0, &vmus, &link));
    }

    #[test]
    #[should_panic(expected = "at least one VMU")]
    fn interior_price_requires_vmus() {
        let (msp, _, link) = setup();
        let _ = msp.interior_optimal_price(&[], &link);
    }
}
