//! Experiment and system configuration mirroring the paper's §V-A settings.

use vtm_rl::ppo::PpoConfig;
use vtm_sim::radio::LinkBudget;

use crate::vmu::VmuProfile;

/// Scale (in megabytes) of one "data unit" of twin size.
///
/// The paper's closed-form expressions reproduce its reported numbers (e.g.
/// the MSP utility of 7.03 with two VMUs, the price rising from 25 to 34 as
/// the unit cost goes from 5 to 9) only when the twin size `D_n` enters the
/// equations normalised to hundreds of megabytes. This constant makes that
/// normalisation explicit: a 200 MB twin has `D_n = 2.0` data units.
pub const DATA_UNIT_MB: f64 = 100.0;

/// Market-level parameters of the bandwidth-trading game.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarketConfig {
    /// Unit transmission cost `C` of bandwidth borne by the MSP.
    pub unit_cost: f64,
    /// Maximum total bandwidth `B_max` the MSP can sell (MHz).
    pub max_bandwidth_mhz: f64,
    /// Maximum unit selling price `p_max`.
    pub max_price: f64,
}

impl Default for MarketConfig {
    fn default() -> Self {
        Self {
            unit_cost: 5.0,
            max_bandwidth_mhz: 50.0,
            max_price: 50.0,
        }
    }
}

impl MarketConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when a bound is inconsistent.
    pub fn validate(&self) -> Result<(), String> {
        if self.unit_cost.is_nan() || self.unit_cost <= 0.0 {
            return Err("unit cost must be positive".to_string());
        }
        if self.max_bandwidth_mhz.is_nan() || self.max_bandwidth_mhz <= 0.0 {
            return Err("maximum bandwidth must be positive".to_string());
        }
        if self.max_price <= self.unit_cost {
            return Err(format!(
                "maximum price ({}) must exceed the unit cost ({})",
                self.max_price, self.unit_cost
            ));
        }
        Ok(())
    }
}

/// Hyper-parameters of the DRL solution (paper §V-A).
#[derive(Debug, Clone, PartialEq)]
pub struct DrlConfig {
    /// Observation history length `L` (past rounds of prices and demands).
    pub history_length: usize,
    /// Number of training episodes `E`.
    pub episodes: usize,
    /// Rounds per episode `K`.
    pub rounds_per_episode: usize,
    /// Optimisation epochs per update `M`.
    pub update_epochs: usize,
    /// Mini-batch size `|I|`.
    pub batch_size: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Hidden layer widths of the actor and critic networks.
    pub hidden_layers: Vec<usize>,
    /// Reward discount factor γ.
    pub discount: f64,
    /// GAE λ (1.0 matches the paper's Eq. (18)).
    pub gae_lambda: f64,
    /// PPO clipping parameter ε.
    pub clip_epsilon: f64,
    /// Value-loss coefficient `c`.
    pub value_loss_coef: f64,
    /// Entropy bonus coefficient.
    pub entropy_coef: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for DrlConfig {
    fn default() -> Self {
        Self {
            history_length: 4,
            episodes: 500,
            rounds_per_episode: 100,
            update_epochs: 10,
            batch_size: 20,
            learning_rate: 1e-5,
            hidden_layers: vec![64, 64],
            discount: 0.95,
            gae_lambda: 1.0,
            clip_epsilon: 0.2,
            value_loss_coef: 0.5,
            entropy_coef: 0.01,
            seed: 0,
        }
    }
}

impl DrlConfig {
    /// A configuration scaled down for fast tests and CI: fewer episodes and a
    /// larger learning rate, otherwise the paper's structure.
    pub fn fast() -> Self {
        Self {
            episodes: 60,
            rounds_per_episode: 40,
            learning_rate: 3e-4,
            ..Self::default()
        }
    }

    /// Maps these hyper-parameters onto a [`PpoConfig`] for an agent with
    /// `obs_dim` observation dimensions and a scalar price action. The actor
    /// trains at the configured learning rate and the critic ten times
    /// faster, as in the paper's setup. Shared by
    /// [`IncentiveMechanism`](crate::mechanism::IncentiveMechanism) and the
    /// scenario trainer ([`crate::scenario::train_scenario_parallel`]).
    pub fn to_ppo_config(&self, obs_dim: usize) -> PpoConfig {
        let mut ppo = PpoConfig::new(obs_dim, 1).with_seed(self.seed);
        ppo.hidden = self.hidden_layers.clone();
        ppo.actor_lr = self.learning_rate;
        ppo.critic_lr = self.learning_rate * 10.0;
        ppo.gamma = self.discount;
        ppo.gae_lambda = self.gae_lambda;
        ppo.clip_epsilon = self.clip_epsilon;
        ppo.value_loss_coef = self.value_loss_coef;
        ppo.entropy_coef = self.entropy_coef;
        ppo.update_epochs = self.update_epochs;
        ppo.minibatch_size = self.batch_size;
        ppo
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when a parameter is out of range.
    pub fn validate(&self) -> Result<(), String> {
        if self.history_length == 0 {
            return Err("history length must be at least 1".to_string());
        }
        if self.episodes == 0 || self.rounds_per_episode == 0 {
            return Err("episodes and rounds per episode must be positive".to_string());
        }
        if self.batch_size == 0 || self.update_epochs == 0 {
            return Err("batch size and update epochs must be positive".to_string());
        }
        if self.learning_rate.is_nan() || self.learning_rate <= 0.0 {
            return Err("learning rate must be positive".to_string());
        }
        Ok(())
    }
}

/// Full experiment configuration: VMUs, market, channel and DRL settings.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// The participating VMUs.
    pub vmus: Vec<VmuProfile>,
    /// Market parameters (cost, caps).
    pub market: MarketConfig,
    /// Inter-RSU link budget determining the spectral efficiency.
    pub link: LinkBudget,
    /// DRL hyper-parameters.
    pub drl: DrlConfig,
}

impl ExperimentConfig {
    /// The paper's two-VMU convergence scenario (§V-B, Fig. 2):
    /// `α₁ = α₂ = 5`, `D₁ = 200 MB`, `D₂ = 100 MB`, `C = 5`.
    pub fn paper_two_vmus() -> Self {
        Self {
            vmus: vec![
                VmuProfile::new(0, 200.0, 5.0),
                VmuProfile::new(1, 100.0, 5.0),
            ],
            market: MarketConfig::default(),
            link: LinkBudget::default(),
            drl: DrlConfig::default(),
        }
    }

    /// The paper's VMU-scaling scenario (§V-B, Fig. 3(c)/(d)): `n` identical
    /// VMUs with 100 MB twins and `α = 5`.
    pub fn paper_n_vmus(n: usize) -> Self {
        Self {
            vmus: (0..n).map(|i| VmuProfile::new(i, 100.0, 5.0)).collect(),
            market: MarketConfig::default(),
            link: LinkBudget::default(),
            drl: DrlConfig::default(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message describing the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.vmus.is_empty() {
            return Err("at least one VMU is required".to_string());
        }
        self.market.validate()?;
        self.drl.validate()?;
        for vmu in &self.vmus {
            vmu.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let cfg = ExperimentConfig::paper_two_vmus();
        assert_eq!(cfg.vmus.len(), 2);
        assert_eq!(cfg.market.unit_cost, 5.0);
        assert_eq!(cfg.market.max_bandwidth_mhz, 50.0);
        assert_eq!(cfg.market.max_price, 50.0);
        assert_eq!(cfg.drl.history_length, 4);
        assert_eq!(cfg.drl.episodes, 500);
        assert_eq!(cfg.drl.rounds_per_episode, 100);
        assert_eq!(cfg.drl.update_epochs, 10);
        assert_eq!(cfg.drl.batch_size, 20);
        assert_eq!(cfg.drl.hidden_layers, vec![64, 64]);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn n_vmu_scenario_scales() {
        let cfg = ExperimentConfig::paper_n_vmus(6);
        assert_eq!(cfg.vmus.len(), 6);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = ExperimentConfig::paper_two_vmus();
        cfg.vmus.clear();
        assert!(cfg.validate().is_err());

        let mut cfg = ExperimentConfig::paper_two_vmus();
        cfg.market.max_price = 1.0;
        assert!(cfg.validate().is_err());

        let mut cfg = ExperimentConfig::paper_two_vmus();
        cfg.drl.history_length = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = ExperimentConfig::paper_two_vmus();
        cfg.drl.learning_rate = 0.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn fast_config_is_valid_and_smaller() {
        let fast = DrlConfig::fast();
        assert!(fast.validate().is_ok());
        assert!(fast.episodes < DrlConfig::default().episodes);
    }

    #[test]
    fn ppo_config_mapping_mirrors_drl_settings() {
        let drl = DrlConfig {
            seed: 11,
            learning_rate: 2e-4,
            ..DrlConfig::default()
        };
        let ppo = drl.to_ppo_config(12);
        assert_eq!(ppo.obs_dim, 12);
        assert_eq!(ppo.action_dim, 1);
        assert_eq!(ppo.hidden, drl.hidden_layers);
        assert_eq!(ppo.seed, 11);
        assert!((ppo.actor_lr - 2e-4).abs() < 1e-18);
        assert!((ppo.critic_lr - 2e-3).abs() < 1e-18);
        assert_eq!(ppo.update_epochs, drl.update_epochs);
        assert_eq!(ppo.minibatch_size, drl.batch_size);
    }

    #[test]
    fn clone_preserves_equality() {
        let cfg = ExperimentConfig::paper_two_vmus();
        let back = cfg.clone();
        assert_eq!(cfg, back);
    }
}
