//! # vtm-core — the paper's contribution
//!
//! A from-scratch Rust implementation of *"Learning-based Incentive Mechanism
//! for Task Freshness-aware Vehicular Twin Migration"* (ICDCS 2023,
//! arXiv:2309.04929):
//!
//! * [`aotm`] — the Age of Twin Migration metric (Eq. (1)) and the immersion
//!   function it drives,
//! * [`vmu`] / [`msp`] — the followers' and leader's utilities and their
//!   closed-form best responses (Theorems 1 and 2),
//! * [`stackelberg`] — the AoTM Stackelberg game, its closed-form and
//!   numerical equilibria under the constraints of Problem 2,
//! * [`mod@env`] — the POMDP pricing environment of §IV-A (history observations,
//!   Eq. (12) reward),
//! * [`mechanism`] — the learning-based incentive mechanism (Algorithm 1) with
//!   PPO from [`vtm_rl`],
//! * [`schemes`] — the random / greedy / fixed / equilibrium pricing baselines
//!   of §V-B,
//! * [`allocator`] — the bridge that lets the mechanism price migrations
//!   inside the end-to-end simulator of [`vtm_sim`],
//! * [`scenario`] — the trace-driven scenario engine: named vehicular
//!   scenarios whose live simulator state (mobility, channels, hand-overs,
//!   freshness) drives the DRL pricing environment,
//! * [`registry`] — the named environment registry mapping preset names
//!   (`static`, `highway`, ...) to runnable environments, shared by the
//!   trainer and the serving layer,
//! * [`routing`] — the deterministic session→shard hash and stream
//!   partitioning helpers shared by the session store and the gateway
//!   fabric,
//! * [`config`] — the experiment parameters of §V-A.
//!
//! # Quickstart
//!
//! ```
//! use vtm_core::prelude::*;
//!
//! // The paper's two-VMU scenario: D = (200 MB, 100 MB), alpha = (5, 5), C = 5.
//! let config = ExperimentConfig::paper_two_vmus();
//! let game = AotmStackelbergGame::from_config(&config);
//!
//! // Complete-information Stackelberg equilibrium (Theorems 1-2). For this
//! // configuration the equilibrium price is p* = 25.3447 (closed-form and
//! // golden-section numerical solvers agree to 1e-6).
//! let equilibrium = game.closed_form_equilibrium();
//! assert!((equilibrium.price - 25.3447).abs() < 1e-3);
//! assert!(equilibrium.msp_utility > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocator;
pub mod aotm;
pub mod config;
pub mod env;
pub mod mechanism;
pub mod msp;
pub mod multi_msp;
pub mod registry;
pub mod routing;
pub mod scenario;
pub mod schemes;
pub mod stackelberg;
pub mod vmu;

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use crate::allocator::{PricingRule, StackelbergAllocator};
    pub use crate::aotm::{
        aotm, data_units_from_mb, immersion, immersion_from_bandwidth, spectral_efficiency,
        AgeOfTwinMigration,
    };
    pub use crate::config::{DrlConfig, ExperimentConfig, MarketConfig, DATA_UNIT_MB};
    pub use crate::env::{PricingEnv, RewardMode, RoundRecord};
    pub use crate::mechanism::{
        DrlPricing, EpisodeLog, EvaluationResult, IncentiveMechanism, TrainingHistory,
    };
    pub use crate::msp::Msp;
    pub use crate::multi_msp::{CompetingMsp, CompetitionOutcome, MultiMspMarket};
    pub use crate::registry::{AnyPricingEnv, EnvBuildOptions, EnvRegistry, EnvSpec};
    pub use crate::routing::{route_frames, session_shard, splitmix64};
    pub use crate::scenario::{
        evaluate_scenario, train_scenario_parallel, RivalMsp, Scenario, ScenarioKind,
        ScenarioTrainingRun, SimPricingEnv, SimRoundRecord, SurgeWindow, Topology,
    };
    pub use crate::schemes::{
        run_scheme, EquilibriumPricing, FixedPricing, GreedyPricing, PricingScheme, RandomPricing,
    };
    pub use crate::stackelberg::{AotmStackelbergGame, EquilibriumOutcome};
    pub use crate::vmu::VmuProfile;
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exports_compile() {
        use crate::prelude::*;
        let cfg = ExperimentConfig::paper_two_vmus();
        assert_eq!(cfg.vmus.len(), 2);
    }
}
