//! Bridging the incentive mechanism into the end-to-end simulator.
//!
//! The paper's game is evaluated analytically; to exercise the same pricing
//! logic inside the packet-level vehicular-metaverse simulator of `vtm-sim`,
//! this module implements [`BandwidthAllocator`]: each time a migration is
//! triggered, the MSP posts its (equilibrium or learned) price and the
//! migrating VMU purchases its best-response bandwidth, which then drives the
//! pre-copy migration and hence the achieved AoTM.

use vtm_sim::metaverse::BandwidthAllocator;
use vtm_sim::radio::LinkBudget;
use vtm_sim::twin::VehicularTwin;

use crate::aotm::data_units_from_mb;
use crate::config::MarketConfig;
use crate::vmu::VmuProfile;

/// How the allocator chooses the unit price it posts per migration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PricingRule {
    /// Always post a fixed price.
    Fixed {
        /// The posted unit price.
        price: f64,
    },
    /// Post the single-VMU Stackelberg price for the migrating twin:
    /// `p* = sqrt(C · log2(1+SNR) · α / D)`, clamped to `[C, p_max]`.
    StackelbergPerMigration,
}

/// A [`BandwidthAllocator`] that prices bandwidth with the incentive
/// mechanism and lets the migrating VMU best-respond.
///
/// Bandwidth inside the game is expressed in MHz; the simulator expects Hz,
/// so the granted amount is converted before being returned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StackelbergAllocator {
    market: MarketConfig,
    link: LinkBudget,
    rule: PricingRule,
    /// Minimum bandwidth floor (MHz) so that migrations never stall entirely
    /// even when the best response is tiny; set to zero to disable.
    min_bandwidth_mhz: f64,
}

impl StackelbergAllocator {
    /// Creates an allocator.
    pub fn new(market: MarketConfig, link: LinkBudget, rule: PricingRule) -> Self {
        Self {
            market,
            link,
            rule,
            min_bandwidth_mhz: 0.0,
        }
    }

    /// Sets a minimum granted bandwidth in MHz.
    pub fn with_min_bandwidth_mhz(mut self, min_bandwidth_mhz: f64) -> Self {
        self.min_bandwidth_mhz = min_bandwidth_mhz.max(0.0);
        self
    }

    /// The posted price for migrating `twin`.
    pub fn price_for(&self, twin: &VehicularTwin) -> f64 {
        let (lo, hi) = (self.market.unit_cost, self.market.max_price);
        match self.rule {
            PricingRule::Fixed { price } => price.clamp(lo, hi),
            PricingRule::StackelbergPerMigration => {
                let alpha = twin.immersion_coefficient();
                let data_units = data_units_from_mb(twin.size_mb());
                let se = self.link.spectral_efficiency();
                (self.market.unit_cost * se * alpha / data_units)
                    .sqrt()
                    .clamp(lo, hi)
            }
        }
    }

    /// The bandwidth (MHz) the migrating VMU purchases at the posted price.
    pub fn demand_for(&self, twin: &VehicularTwin) -> f64 {
        let price = self.price_for(twin);
        let vmu = VmuProfile::new(0, twin.size_mb(), twin.immersion_coefficient());
        vmu.best_response(price, &self.link)
            .max(self.min_bandwidth_mhz)
    }
}

impl BandwidthAllocator for StackelbergAllocator {
    fn allocate(&mut self, twin: &VehicularTwin, free_bandwidth_hz: f64) -> f64 {
        let demand_hz = self.demand_for(twin) * 1e6;
        demand_hz.min(free_bandwidth_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtm_sim::metaverse::{MetaverseConfig, MetaverseSim};
    use vtm_sim::twin::TwinId;

    fn twin() -> VehicularTwin {
        VehicularTwin::with_size_and_alpha(TwinId(0), 200.0, 5.0)
    }

    #[test]
    fn stackelberg_price_matches_single_vmu_formula() {
        let alloc = StackelbergAllocator::new(
            MarketConfig::default(),
            LinkBudget::default(),
            PricingRule::StackelbergPerMigration,
        );
        let se = LinkBudget::default().spectral_efficiency();
        let expected = (5.0 * se * 5.0 / 2.0_f64).sqrt().clamp(5.0, 50.0);
        assert!((alloc.price_for(&twin()) - expected).abs() < 1e-9);
    }

    #[test]
    fn fixed_rule_clamps_price() {
        let alloc = StackelbergAllocator::new(
            MarketConfig::default(),
            LinkBudget::default(),
            PricingRule::Fixed { price: 500.0 },
        );
        assert_eq!(alloc.price_for(&twin()), 50.0);
    }

    #[test]
    fn demand_is_positive_and_bounded_by_free_bandwidth() {
        let mut alloc = StackelbergAllocator::new(
            MarketConfig::default(),
            LinkBudget::default(),
            PricingRule::StackelbergPerMigration,
        );
        let demand_mhz = alloc.demand_for(&twin());
        assert!(demand_mhz > 0.0);
        let granted = alloc.allocate(&twin(), 1e3);
        assert!(granted <= 1e3);
        let granted = alloc.allocate(&twin(), 1e9);
        assert!((granted - demand_mhz * 1e6).abs() < 1e-3);
    }

    #[test]
    fn min_bandwidth_floor_applies() {
        let alloc = StackelbergAllocator::new(
            MarketConfig {
                unit_cost: 5.0,
                max_bandwidth_mhz: 50.0,
                max_price: 50.0,
            },
            LinkBudget::default(),
            PricingRule::Fixed { price: 50.0 },
        )
        .with_min_bandwidth_mhz(0.5);
        assert!(alloc.demand_for(&twin()) >= 0.5);
    }

    #[test]
    fn allocator_drives_end_to_end_simulation() {
        let config = MetaverseConfig {
            duration_s: 300.0,
            ..MetaverseConfig::default()
        };
        let mut sim = MetaverseSim::highway_scenario(config, 3, 200.0, 5.0);
        // The game's bandwidth units (MHz-scale demands well below 1 MHz) are
        // too small to outrun the packet-level dirty-page rate, so the bridge
        // applies a floor when driving the simulator.
        let mut alloc = StackelbergAllocator::new(
            MarketConfig::default(),
            LinkBudget::default(),
            PricingRule::StackelbergPerMigration,
        )
        .with_min_bandwidth_mhz(2.0);
        let report = sim.run(&mut alloc);
        assert!(!report.migrations.is_empty());
        assert_eq!(
            report.failed_migrations, 0,
            "priced migrations must succeed"
        );
        assert!(report.aotm_summary.mean.is_finite());
        assert!(report.aotm_summary.mean > 0.0);
    }
}
