//! Trait-level contract tests for [`Environment::reset_with_seed`].
//!
//! The `Environment` trait's default implementation *ignores* the seed (it
//! only suits environments with no internal randomness), so every stochastic
//! environment must override it — the `Trainer`'s round-addressed seed
//! schedule and the checkpoint-resume guarantee depend on the override. This
//! suite asserts, through the trait object alone, that both shipped pricing
//! environments honour the seed.

use vtm_core::config::ExperimentConfig;
use vtm_core::env::{PricingEnv, RewardMode};
use vtm_core::scenario::{Scenario, ScenarioKind};
use vtm_core::stackelberg::AotmStackelbergGame;
use vtm_rl::env::Environment;

/// Asserts the reseed contract for any environment:
///
/// 1. `reset_with_seed(s)` replays the same initial observation and the same
///    trajectory for a fixed action sequence, regardless of prior episodes;
/// 2. a different seed produces a different trajectory (the environment is
///    actually stochastic, so the override is load-bearing).
fn assert_honours_reset_seed<E: Environment>(env: &mut E, label: &str) {
    let probe = [12.0, 25.0, 40.0, 8.0];
    let run = |env: &mut E, seed: u64| -> (Vec<f64>, Vec<(Vec<f64>, f64)>) {
        let obs = env.reset_with_seed(seed);
        let trajectory = probe
            .iter()
            .map(|&p| {
                let step = env.step(&[p]);
                (step.observation, step.reward)
            })
            .collect();
        (obs, trajectory)
    };

    let (obs_a, traj_a) = run(env, 2024);
    // Interleave unrelated episodes so the replay cannot come from a fresh
    // environment's stream position by accident.
    env.reset();
    env.step(&[30.0]);
    env.step(&[15.0]);
    let (obs_b, traj_b) = run(env, 2024);
    assert_eq!(obs_a, obs_b, "`{label}` must replay a seeded reset exactly");
    assert_eq!(
        traj_a, traj_b,
        "`{label}` must replay a seeded trajectory exactly"
    );

    let (obs_c, traj_c) = run(env, 2025);
    assert!(
        obs_a != obs_c || traj_a != traj_c,
        "`{label}` must produce a different episode under a different seed"
    );
}

#[test]
fn static_pricing_env_honours_reset_with_seed() {
    let game = AotmStackelbergGame::from_config(&ExperimentConfig::paper_two_vmus());
    let mut env = PricingEnv::new(game, 4, 10, RewardMode::Improvement, 7);
    assert_honours_reset_seed(&mut env, "PricingEnv");
}

#[test]
fn every_scenario_env_honours_reset_with_seed() {
    for kind in ScenarioKind::ALL {
        let mut env = Scenario::preset(kind).env(4, 10, RewardMode::Improvement, 7);
        assert_honours_reset_seed(&mut env, kind.name());
    }
}
