//! Cross-thread determinism and fixed-seed snapshots for the trace-driven
//! scenario engine.
//!
//! The scenario engine's contract is that a fixed-seed training run is a
//! *pure function* of its configuration: the collector thread count, core
//! count and scheduling must never leak into the results. These tests pin
//! that contract bit-for-bit, plus a per-scenario snapshot digest so any
//! accidental change to a preset's dynamics (trace distributions, mobility,
//! market clearing, reward) is caught immediately.

use vtm_core::config::DrlConfig;
use vtm_core::env::RewardMode;
use vtm_core::scenario::{train_scenario_parallel, Scenario, ScenarioKind, SimRoundRecord};
use vtm_rl::env::Environment;

fn drl(seed: u64) -> DrlConfig {
    DrlConfig {
        episodes: 6,
        rounds_per_episode: 12,
        learning_rate: 3e-4,
        seed,
        ..DrlConfig::default()
    }
}

/// A fixed-seed `train_scenario_parallel` run must produce bit-identical
/// round records and training logs at 1 vs N collector threads.
#[test]
fn scenario_training_is_bit_identical_across_thread_counts() {
    let scenario = Scenario::preset(ScenarioKind::Highway);
    let config = drl(42);
    let reference = train_scenario_parallel(&scenario, &config, RewardMode::Improvement, 6, 3, 1);
    for threads in [2, 3, 4, 8] {
        let run =
            train_scenario_parallel(&scenario, &config, RewardMode::Improvement, 6, 3, threads);
        assert_eq!(
            reference.round_logs, run.round_logs,
            "round records diverge at {threads} collector threads"
        );
        assert_eq!(reference.history.episodes.len(), run.history.episodes.len());
        for (a, b) in reference
            .history
            .episodes
            .iter()
            .zip(run.history.episodes.iter())
        {
            assert_eq!(a.episode_return.to_bits(), b.episode_return.to_bits());
            assert_eq!(a.mean_msp_utility.to_bits(), b.mean_msp_utility.to_bits());
            assert_eq!(a.mean_price.to_bits(), b.mean_price.to_bits());
            assert_eq!(a.best_msp_utility.to_bits(), b.best_msp_utility.to_bits());
        }
    }
}

/// The multi-MSP scenario exercises the rival-pricing branch; it must be
/// just as thread-count invariant as the single-MSP ones.
#[test]
fn rival_scenario_training_is_thread_count_invariant() {
    let scenario = Scenario::preset(ScenarioKind::MultiMspCompetition);
    let config = drl(7);
    let a = train_scenario_parallel(&scenario, &config, RewardMode::NormalizedUtility, 4, 4, 1);
    let b = train_scenario_parallel(&scenario, &config, RewardMode::NormalizedUtility, 4, 4, 4);
    assert_eq!(a.round_logs, b.round_logs);
}

/// FNV-1a over the bit patterns of every field of every round record: any
/// change to a preset's dynamics changes the digest.
fn digest(records: &[SimRoundRecord]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(PRIME);
    };
    for r in records {
        mix(r.round as u64);
        mix(r.clock_s.to_bits());
        mix(r.price.to_bits());
        mix(r.rival_price.map_or(u64::MAX, f64::to_bits));
        mix(r.active_vmus as u64);
        mix(r.served_vmus as u64);
        mix(r.migrations as u64);
        mix(r.budget_mhz.to_bits());
        mix(r.total_demand_mhz.to_bits());
        mix(r.msp_utility.to_bits());
        mix(r.mean_aotm_s.map_or(u64::MAX, f64::to_bits));
        mix(r.mean_spectral_efficiency.to_bits());
    }
    h
}

/// Plays a fixed price ladder on a freshly seeded environment and returns the
/// digest of the resulting round records.
fn scenario_digest(kind: ScenarioKind) -> u64 {
    let mut env = Scenario::preset(kind).env(4, 16, RewardMode::Improvement, 0);
    env.reset_with_seed(2024);
    let prices = [
        8.0, 10.0, 12.0, 15.0, 18.0, 22.0, 26.0, 30.0, 24.0, 20.0, 16.0, 14.0, 11.0, 9.0, 13.0,
        17.0,
    ];
    for price in prices {
        env.step(&[price]);
    }
    assert_eq!(env.round_log().len(), prices.len());
    digest(env.round_log())
}

/// Fixed-seed snapshots, one per named scenario. If an intentional change to
/// a preset's dynamics lands, re-record the digest printed in the assertion
/// message.
#[test]
fn fixed_seed_snapshot_per_named_scenario() {
    let expected: [(ScenarioKind, u64); 5] = [
        (ScenarioKind::Highway, 0x93f6_aee2_4764_c22f),
        (ScenarioKind::UrbanGrid, 0x1205_3ca6_18f5_6c17),
        (ScenarioKind::RushHourSurge, 0xceb2_3f87_b073_7de2),
        (ScenarioKind::SparseRural, 0x4083_cb18_2340_6ac1),
        (ScenarioKind::MultiMspCompetition, 0x1c9d_b836_c484_1edf),
    ];
    for (kind, want) in expected {
        let got = scenario_digest(kind);
        assert_eq!(
            got, want,
            "scenario `{kind}` snapshot digest changed: got {got:#018x}, expected {want:#018x}"
        );
    }
}

/// The same fixed-seed episode replayed twice in one process must digest
/// identically (guards the `reset_with_seed` contract the snapshots rely on).
#[test]
fn snapshot_digests_are_reproducible_within_a_process() {
    for kind in ScenarioKind::ALL {
        assert_eq!(scenario_digest(kind), scenario_digest(kind));
    }
}
