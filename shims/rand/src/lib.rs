//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! the workspace vendors the *small* subset of the `rand` 0.8 API that the
//! simulation and learning code actually uses:
//!
//! * [`Rng::gen`] for `f64` / `u64` / `bool`,
//! * [`Rng::gen_range`] over `Range`/`RangeInclusive` of `f64` and the
//!   unsigned integer index types,
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`] — here a xoshiro256++ generator seeded via SplitMix64
//!   (deterministic, portable, and plenty for simulation workloads; it is
//!   **not** the CSPRNG the real `StdRng` is),
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Determinism contract: for a fixed seed the generated stream is stable
//! across platforms and releases of this workspace. The parallel rollout
//! collector in `vtm-rl` relies on this to make serial and parallel
//! collection bit-identical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u64` words plus the convenience methods built on top.
///
/// This merges `rand`'s `RngCore` + `Rng` pair into one trait; generic code
/// written against `R: Rng + ?Sized` from the real crate compiles unchanged.
pub trait Rng {
    /// Returns the next pseudo-random 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from its standard distribution
    /// (`f64` uniform in `[0, 1)`, integers uniform over their full range,
    /// `bool` fair).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must be in [0,1]"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the implementing type's standard distribution.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Converts a random word into a uniform `f64` in `[0, 1)` with 53-bit
/// precision (the same construction the real crate uses).
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        // `start + (end - start) * u` can round up to exactly `end` when `u`
        // is the maximal unit value; resample to honour the half-open
        // contract (probability ~2^-53 per draw, so the loop is negligible).
        loop {
            let x = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
            if x < self.end {
                return x;
            }
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        // Uniform over [lo, hi]; hitting hi exactly has measure ~2^-53 which
        // matches the real crate's behaviour closely enough for simulation.
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

/// Uniform draw from `[0, span)` by rejection sampling (no modulo bias).
fn sample_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let word = rng.next_u64();
        if word <= zone {
            return word % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                self.start + sample_below(rng, (self.end - self.start) as u64) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                // `(hi - lo) + 1` would overflow for the full u64 range, so
                // special-case a span that covers every 64-bit word.
                match ((hi - lo) as u64).checked_add(1) {
                    Some(span) => lo + sample_below(rng, span) as $t,
                    None => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    ///
    /// Stands in for `rand::rngs::StdRng`. Not cryptographically secure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Builds a generator directly from its internal state.
        ///
        /// # Panics
        ///
        /// Panics if the state is all zeros (a xoshiro fixed point).
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(s.iter().any(|&w| w != 0), "xoshiro state must be non-zero");
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Convenience prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn float_mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(5.0..50.0);
            assert!((5.0..50.0).contains(&x));
            let y = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&y));
            let i = rng.gen_range(0..7usize);
            assert!(i < 7);
            let j = rng.gen_range(2..=4usize);
            assert!((2..=4).contains(&j));
        }
    }

    #[test]
    fn inclusive_ranges_touching_type_max_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..1000 {
            let a = rng.gen_range(1..=u8::MAX);
            assert!(a >= 1);
            let b = rng.gen_range(u64::MAX - 1..=u64::MAX);
            assert!(b >= u64::MAX - 1);
            let _ = rng.gen_range(0..=u64::MAX);
            let c = rng.gen_range(usize::MAX - 3..=usize::MAX);
            assert!(c >= usize::MAX - 3);
        }
    }

    #[test]
    fn half_open_float_range_excludes_end() {
        let mut rng = StdRng::seed_from_u64(19);
        // A degenerate range of two adjacent floats maximises the rounding
        // pressure on the upper bound.
        let lo = 1.0f64;
        let hi = lo + f64::EPSILON;
        for _ in 0..1000 {
            let x = rng.gen_range(lo..hi);
            assert!((lo..hi).contains(&x), "{x} escaped [{lo}, {hi})");
        }
    }

    #[test]
    fn integer_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left the slice sorted");
    }

    #[test]
    fn choose_picks_existing_elements() {
        let mut rng = StdRng::seed_from_u64(13);
        let v = [10, 20, 30];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn works_through_mut_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let _ = draw(&mut rng);
        let r = &mut rng;
        let _ = draw(r);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5..5usize);
    }
}
