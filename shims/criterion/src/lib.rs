//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment of this repository cannot reach crates.io, so the
//! `vtm-bench` benchmarks link against this minimal harness instead. It
//! reproduces the slice of the criterion 0.5 API the benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId`], [`Bencher::iter`], [`criterion_group!`] and
//! [`criterion_main!`] — and reports a median wall-clock time per iteration.
//!
//! It performs no statistical analysis beyond the median of per-batch means;
//! numbers are indicative, not publication-grade. The measurement budget per
//! benchmark can be tuned with the `VTM_BENCH_BUDGET_MS` environment
//! variable (default 300 ms after a 50 ms warm-up).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Formats a nanosecond figure with a human-friendly unit.
fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn budget_from_env() -> Duration {
    let ms = std::env::var("VTM_BENCH_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms.max(1))
}

/// Passed to the closure given to `bench_function`; runs and times it.
pub struct Bencher {
    /// Measurement wall-clock budget, inherited from the [`Criterion`].
    budget: Duration,
    /// Median nanoseconds per iteration, filled in by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let budget = self.budget;
        // Warm-up: run until 50 ms have elapsed (at least once) and estimate
        // how many iterations fit in one ~10 ms measurement batch.
        let warmup = Duration::from_millis(50);
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < warmup || warm_iters == 0 {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
        let batch = ((10_000_000.0 / est_ns) as u64).clamp(1, 1_000_000);

        let mut batch_means = Vec::new();
        let measure_start = Instant::now();
        while measure_start.elapsed() < budget || batch_means.is_empty() {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            batch_means.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        batch_means.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        self.ns_per_iter = batch_means[batch_means.len() / 2];
    }
}

/// Identifies a parameterised benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new<D: Display>(function_name: &str, parameter: D) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter<D: Display>(parameter: D) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// The top-level harness handle.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    /// Reads the measurement budget from `VTM_BENCH_BUDGET_MS` (default
    /// 300 ms per benchmark).
    fn default() -> Self {
        Self {
            budget: budget_from_env(),
        }
    }
}

impl Criterion {
    /// Mirrors criterion's CLI hook; accepted and ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Overrides the per-benchmark measurement budget (tests use this
    /// instead of mutating the process environment).
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.budget = budget.max(Duration::from_millis(1));
        self
    }

    /// Runs a single benchmark and prints its median time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            budget: self.budget,
            ns_per_iter: 0.0,
        };
        f(&mut b);
        println!("{name:<50} time: {:>12}/iter", format_ns(b.ns_per_iter));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Mirrors criterion's sample-count knob; accepted and ignored (the shim
    /// sizes batches by wall-clock budget instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Mirrors criterion's measurement-time knob; accepted and ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            budget: self.criterion.budget,
            ns_per_iter: 0.0,
        };
        f(&mut b);
        let label = format!("{}/{}", self.name, id.id);
        println!("{label:<50} time: {:>12}/iter", format_ns(b.ns_per_iter));
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (a no-op in the shim, kept for API parity).
    pub fn finish(self) {}
}

/// Re-export matching `criterion::black_box` (deprecated upstream in favour
/// of `std::hint::black_box`, which the benches already use directly).
pub use std::hint::black_box;

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default().with_budget(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_reports_positive_time() {
        let mut c = quick();
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn groups_run_their_benches() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut count = 0;
        group.bench_with_input(BenchmarkId::from_parameter(3), &3, |b, &n| {
            b.iter(|| std::hint::black_box(n * 2));
            count += 1;
        });
        group.bench_function("plain", |b| {
            b.iter(|| std::hint::black_box(0));
            count += 1;
        });
        group.finish();
        assert_eq!(count, 2);
    }

    #[test]
    fn format_ns_picks_sensible_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with('s'));
    }
}
