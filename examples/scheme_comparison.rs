//! Compare the pricing schemes of §V-B: the complete-information Stackelberg
//! oracle, the greedy baseline, the random baseline and a trained DRL policy.
//!
//! ```text
//! cargo run --release --example scheme_comparison
//! ```

use vtm::prelude::*;

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len().max(1) as f64
}

fn main() {
    let rounds = 200;
    let mut config = ExperimentConfig::paper_two_vmus();
    config.drl = DrlConfig {
        // CI budgets the run via VTM_EXAMPLE_EPISODES.
        episodes: vtm::example_episodes(60),
        rounds_per_episode: 50,
        learning_rate: 3e-4,
        ..DrlConfig::default()
    };
    let game = AotmStackelbergGame::from_config(&config);
    let equilibrium = game.closed_form_equilibrium();

    // Train the DRL policy (incomplete information), then freeze it.
    println!(
        "Training the DRL policy ({} episodes)...",
        config.drl.episodes
    );
    let mut mechanism =
        IncentiveMechanism::with_reward_mode(config.clone(), RewardMode::Improvement);
    mechanism.train();
    let drl_scheme = mechanism.into_scheme();

    let mut schemes: Vec<Box<dyn PricingScheme>> = vec![
        Box::new(EquilibriumPricing),
        Box::new(drl_scheme),
        Box::new(GreedyPricing::new(7, 1.0)),
        Box::new(RandomPricing::new(7)),
        Box::new(FixedPricing { price: 40.0 }),
    ];

    println!("\nscheme, mean_msp_utility, share_of_equilibrium");
    for scheme in schemes.iter_mut() {
        let utilities = run_scheme(scheme.as_mut(), &game, rounds);
        let avg = mean(&utilities);
        println!(
            "{:<24}, {:>10.3}, {:>8.1}%",
            scheme.name(),
            avg,
            100.0 * avg / equilibrium.msp_utility
        );
    }

    println!(
        "\n(complete-information equilibrium utility = {:.3}, price = {:.3})",
        equilibrium.msp_utility, equilibrium.price
    );
}
