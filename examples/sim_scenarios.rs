//! The trace-driven scenario engine: train the DRL pricing policy against
//! live vehicular-simulator state and watch one evaluation episode round by
//! round.
//!
//! ```text
//! cargo run --release --example sim_scenarios                  # highway
//! cargo run --release --example sim_scenarios -- urban-grid    # any named scenario
//! cargo run --release --example sim_scenarios -- multi-msp
//! ```

use vtm::prelude::*;

fn main() {
    let kind = std::env::args()
        .nth(1)
        .and_then(|name| ScenarioKind::from_name(&name))
        .unwrap_or(ScenarioKind::Highway);
    let scenario = Scenario::preset(kind);
    // CI budgets the run via VTM_EXAMPLE_EPISODES.
    let episodes = vtm::example_episodes(24);
    let drl = DrlConfig {
        episodes,
        rounds_per_episode: 30,
        learning_rate: 3e-4,
        ..DrlConfig::default()
    };

    println!(
        "Scenario `{kind}` — {} ({} trips, slot {} s)",
        kind.description(),
        scenario.trace.trips,
        scenario.slot_s
    );
    println!("Training for {episodes} episodes on 4 parallel scenario replicas...\n");
    let run = train_scenario_parallel(&scenario, &drl, RewardMode::Improvement, episodes, 4, 0);
    println!(
        "tail-8 mean return = {:.2}, tail-8 mean MSP utility = {:.3}",
        run.history.tail_mean(8, |e| e.episode_return),
        run.history.tail_mean(8, |e| e.mean_msp_utility)
    );

    let mut env = scenario.env(
        drl.history_length,
        drl.rounds_per_episode,
        RewardMode::Improvement,
        1234,
    );
    let records = evaluate_scenario(&run.agent, &mut env, drl.rounds_per_episode);
    println!("\nround, clock_s, price, active, served, handovers, sold_mhz, msp_utility, aotm_s");
    for r in &records {
        println!(
            "{:5}, {:7.1}, {:6.2}, {:6}, {:6}, {:9}, {:8.3}, {:11.3}, {}",
            r.round,
            r.clock_s,
            r.price,
            r.active_vmus,
            r.served_vmus,
            r.migrations,
            r.total_demand_mhz,
            r.msp_utility,
            r.mean_aotm_s
                .map(|a| format!("{a:.3}"))
                .unwrap_or_else(|| "-".to_string()),
        );
    }
    let handovers: usize = records.iter().map(|r| r.migrations).sum();
    println!(
        "\nevaluation: {} rounds, {} RSU hand-overs, mean utility {:.3}",
        records.len(),
        handovers,
        records.iter().map(|r| r.msp_utility).sum::<f64>() / records.len().max(1) as f64
    );
}
