//! The full policy lifecycle in one run: **train** a pricing policy with the
//! builder-style `Trainer`, **checkpoint** it to a versioned binary file,
//! **load** the frozen snapshot in a fresh `PricingService`, and **serve** a
//! round of batched price quotes to concurrent VMU sessions — the same split
//! production RL systems use between learner and inference workers.
//!
//! ```text
//! cargo run --release --example policy_lifecycle
//! ```

use vtm::core::registry::{EnvBuildOptions, EnvRegistry};
use vtm::prelude::*;
use vtm::rl::snapshot::PolicySnapshot;
use vtm::rl::trainer::Trainer;

fn main() {
    // ---- 1. Train -------------------------------------------------------
    let registry = EnvRegistry::builtin();
    let options = EnvBuildOptions {
        seed: 7,
        ..EnvBuildOptions::default()
    };
    let env = registry
        .build("static", &options)
        .expect("the static preset is built in");
    let episodes = vtm::example_episodes(12);
    let mut agent = PpoAgent::new(
        PpoConfig::new(env.observation_dim(), 1).with_seed(7),
        env.action_space(),
    );
    let max_steps = env.rounds_per_episode();
    let report = Trainer::for_env(env)
        .episodes(episodes)
        .collectors(4)
        .threads(0)
        .max_steps(max_steps)
        .on_episode(|e| {
            if e.episode % 4 == 0 {
                println!(
                    "episode {:3}: return {:5.1}, mean price {:6.2}",
                    e.episode,
                    e.episode_return,
                    e.env.episode_stats().mean_price()
                );
            }
        })
        .run(&mut agent)
        .expect("training must succeed");
    println!(
        "trained {} episodes over {} rounds\n",
        report.episode_returns.len(),
        report.rounds
    );

    // ---- 2. Checkpoint --------------------------------------------------
    let path = std::env::temp_dir().join("vtm_policy_lifecycle_example.vtm");
    agent
        .snapshot()
        .with_trained_rounds(report.next_round())
        .save_to(&path)
        .expect("checkpoint must be writable");
    println!("checkpoint written to {}", path.display());

    // ---- 3. Load + serve ------------------------------------------------
    // A brand-new process would start here: only the file crosses over.
    let snapshot = PolicySnapshot::load_from(&path).expect("checkpoint must load");
    let features_per_round = registry
        .get("static")
        .expect("preset exists")
        .features_per_round();
    let service = PricingService::from_snapshot(
        &snapshot,
        ServiceConfig::new(options.history_length, features_per_round),
    )
    .expect("snapshot geometry matches the preset");

    // Quote one pricing round for a fleet of VMU sessions in one batch.
    let requests: Vec<QuoteRequest> = (0..8)
        .map(|vmu| {
            QuoteRequest::new(
                vmu,
                // In production these features come from the previous round's
                // market outcome; a deterministic stand-in keeps the example
                // self-contained.
                (0..features_per_round)
                    .map(|f| ((vmu as usize * 7 + f) % 10) as f64 / 10.0)
                    .collect(),
            )
        })
        .collect();
    let quotes = service
        .quote_batch(&requests)
        .expect("well-formed requests must price");
    println!("\nsession, quoted price (deterministic greedy mode)");
    for quote in &quotes {
        println!("{:7}, {:12.3}", quote.session, quote.price());
    }
    println!(
        "\nserved {} quotes across {} sessions with one batched forward pass",
        service.stats().quotes,
        service.stats().sessions
    );
    let _ = std::fs::remove_file(&path);
}
