//! End-to-end scenario: vehicles drive along a corridor of RSUs, their twins
//! are live-migrated whenever coverage changes, and each migration's
//! bandwidth is purchased at the Stackelberg price computed by the incentive
//! mechanism. Reports the achieved Age of Twin Migration distribution.
//!
//! ```text
//! cargo run --release --example highway_migration
//! ```

use vtm::prelude::*;

fn main() {
    let sim_config = MetaverseConfig {
        rsu_count: 8,
        rsu_spacing_m: 1000.0,
        rsu_coverage_m: 600.0,
        // CI budgets the run via VTM_EXAMPLE_DURATION_S.
        duration_s: vtm::example_duration_s(600.0),
        ..MetaverseConfig::default()
    };
    let vmus = 5;
    let twin_size_mb = 200.0;
    let alpha = 5.0;

    println!(
        "Highway scenario: {} VMUs, {} RSUs spaced {} m apart, {} s simulated",
        vmus, sim_config.rsu_count, sim_config.rsu_spacing_m, sim_config.duration_s
    );

    // Two allocators: the Stackelberg-priced one and a naive equal-share one.
    let market = MarketConfig::default();
    let link = LinkBudget::default();
    let mut priced = StackelbergAllocator::new(market, link, PricingRule::StackelbergPerMigration)
        .with_min_bandwidth_mhz(2.0);
    let mut equal_share = EqualShareAllocator {
        expected_concurrent: vmus,
    };

    let mut sim_a = MetaverseSim::highway_scenario(sim_config.clone(), vmus, twin_size_mb, alpha);
    let report_priced = sim_a.run(&mut priced);

    let mut sim_b = MetaverseSim::highway_scenario(sim_config, vmus, twin_size_mb, alpha);
    let report_equal = sim_b.run(&mut equal_share);

    for (name, report) in [
        ("stackelberg-priced", &report_priced),
        ("equal-share", &report_equal),
    ] {
        println!("\n--- allocator: {name} ---");
        println!("  migrations triggered : {}", report.migrations.len());
        println!("  migrations failed    : {}", report.failed_migrations);
        println!(
            "  AoTM (s)             : mean {:.3}, median {:.3}, p95 {:.3}, max {:.3}",
            report.aotm_summary.mean,
            report.aotm_summary.median,
            report.aotm_summary.p95,
            report.aotm_summary.max
        );
        println!(
            "  downtime (s)         : mean {:.4}, p95 {:.4}",
            report.downtime_summary.mean, report.downtime_summary.p95
        );
        println!(
            "  distance travelled   : {:.1} km",
            report.total_distance_m / 1000.0
        );
    }
}
