//! The paper's future-work extension: multiple MSPs competing on price.
//!
//! Compares the single-MSP (monopoly) Stackelberg equilibrium against a
//! duopoly solved by iterated best response, showing how competition erodes
//! the MSP profit and benefits the VMUs.
//!
//! ```text
//! cargo run --release --example multi_msp_competition
//! ```

use vtm::prelude::*;

fn main() {
    let vmus = vec![
        VmuProfile::new(0, 200.0, 5.0),
        VmuProfile::new(1, 100.0, 5.0),
        VmuProfile::new(2, 150.0, 12.0),
        VmuProfile::new(3, 250.0, 18.0),
    ];
    let link = LinkBudget::default();

    // Monopoly benchmark: the paper's single-MSP Stackelberg game.
    let monopoly = AotmStackelbergGame::new(MarketConfig::default(), vmus.clone(), link)
        .closed_form_equilibrium();
    println!("=== Monopoly (single MSP, the paper's setting) ===");
    println!("  price            = {:.3}", monopoly.price);
    println!("  MSP utility      = {:.3}", monopoly.msp_utility);
    println!("  total VMU utility= {:.3}", monopoly.total_vmu_utility());

    // Duopoly: two MSPs with the same cost compete on price.
    let market = MultiMspMarket::new(
        vec![
            CompetingMsp::new(0, 5.0, 50.0, 50.0),
            CompetingMsp::new(1, 5.0, 50.0, 50.0),
        ],
        vmus.clone(),
        link,
    );
    let duopoly = market.solve_price_competition(200, 1e-5);
    println!("\n=== Duopoly (price competition, future-work extension) ===");
    println!(
        "  prices           = {:?} (converged: {}, sweeps: {})",
        duopoly
            .prices
            .iter()
            .map(|p| format!("{p:.3}"))
            .collect::<Vec<_>>(),
        duopoly.converged,
        duopoly.iterations
    );
    println!(
        "  MSP utilities    = {:?}",
        duopoly
            .msp_utilities
            .iter()
            .map(|u| format!("{u:.3}"))
            .collect::<Vec<_>>()
    );
    println!("  total MSP profit = {:.3}", duopoly.total_msp_utility());
    println!(
        "  total VMU utility= {:.3}",
        duopoly.vmu_utilities.iter().sum::<f64>()
    );

    let profit_drop = 100.0 * (monopoly.msp_utility - duopoly.total_msp_utility())
        / monopoly.msp_utility.max(1e-12);
    let vmu_gain = 100.0
        * (duopoly.vmu_utilities.iter().sum::<f64>() - monopoly.total_vmu_utility())
        / monopoly.total_vmu_utility().max(1e-12);
    println!(
        "\nCompetition cuts aggregate MSP profit by {profit_drop:.1}% and raises total VMU utility by {vmu_gain:.1}% relative to the monopoly."
    );
}
