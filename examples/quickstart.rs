//! Quickstart: solve the paper's two-VMU Stackelberg game in closed form.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Prints the Age of Twin Migration, the equilibrium price, the bandwidth
//! demands and all utilities for the scenario of §V-B (D = 200 MB / 100 MB,
//! α = 5, C = 5, B_max = 50 MHz, p_max = 50).

use vtm::prelude::*;

fn main() {
    let config = ExperimentConfig::paper_two_vmus();
    let game = AotmStackelbergGame::from_config(&config);

    println!("=== AoTM Stackelberg game: paper two-VMU scenario ===");
    println!(
        "spectral efficiency log2(1 + SNR) = {:.3} bit/s/Hz",
        game.spectral_efficiency()
    );

    // Complete-information Stackelberg equilibrium (Theorems 1 and 2).
    let eq = game.closed_form_equilibrium();
    println!("\nStackelberg equilibrium:");
    println!("  price p*                 = {:.3}", eq.price);
    println!("  MSP utility U_s          = {:.3}", eq.msp_utility);
    for (vmu, (&b, &u)) in config
        .vmus
        .iter()
        .zip(eq.demands_mhz.iter().zip(eq.vmu_utilities.iter()))
    {
        let age = aotm(vmu.data_units(), b, &config.link);
        println!(
            "  VMU {} (D = {:>5.1} MB, alpha = {:>4.1}): demand = {:.4} MHz, AoTM = {}, utility = {:.3}",
            vmu.id, vmu.data_size_mb, vmu.alpha, b, age, u
        );
    }
    println!(
        "  total bandwidth sold     = {:.4} MHz (cap {} MHz, binding: {})",
        eq.total_bandwidth_mhz(),
        config.market.max_bandwidth_mhz,
        eq.bandwidth_cap_binding
    );

    // Cross-check with the numerical solver built on the generic game-theory crate.
    let numeric = game.numerical_equilibrium();
    println!("\nNumerical cross-check:");
    println!(
        "  price    (closed form vs numeric): {:.4} vs {:.4}",
        eq.price, numeric.price
    );
    println!(
        "  utility  (closed form vs numeric): {:.4} vs {:.4}",
        eq.msp_utility, numeric.msp_utility
    );

    // Verify Definition 1: no profitable unilateral deviation.
    let report = verify_equilibrium(
        &game,
        eq.price,
        &eq.demands_mhz,
        201,
        &SolveOptions::default(),
    );
    println!(
        "\nEquilibrium verification: leader best gain {:.2e}, follower best gain {:.2e} -> {}",
        report.leader_best_gain,
        report.follower_best_gain,
        if report.is_equilibrium(1e-2) {
            "is a Stackelberg equilibrium"
        } else {
            "NOT an equilibrium"
        }
    );
}
