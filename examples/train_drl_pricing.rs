//! Train the learning-based incentive mechanism (Algorithm 1) and watch it
//! approach the Stackelberg equilibrium under incomplete information.
//!
//! ```text
//! cargo run --release --example train_drl_pricing            # fast demo run
//! cargo run --release --example train_drl_pricing -- --full  # paper-scale run (E = 500)
//! ```

use vtm::prelude::*;

fn main() {
    let full = std::env::args().any(|a| a == "--full");

    let mut config = ExperimentConfig::paper_two_vmus();
    if !full {
        config.drl = DrlConfig {
            // CI budgets the run via VTM_EXAMPLE_EPISODES so the example
            // cannot bit-rot without taking minutes.
            episodes: vtm::example_episodes(80),
            rounds_per_episode: 50,
            learning_rate: 3e-4,
            ..DrlConfig::default()
        };
    }
    let episodes = config.drl.episodes;
    println!(
        "Training the DRL pricing policy for {episodes} episodes of {} rounds (reward: Eq. (12))",
        config.drl.rounds_per_episode
    );

    let game = AotmStackelbergGame::from_config(&config);
    let equilibrium = game.closed_form_equilibrium();
    println!(
        "Complete-information benchmark: p* = {:.3}, U_s* = {:.3}\n",
        equilibrium.price, equilibrium.msp_utility
    );

    let mut mechanism = IncentiveMechanism::new(config);
    let history = mechanism.train();

    println!("episode, return, mean_msp_utility, mean_price");
    let stride = (history.episodes.len() / 20).max(1);
    for log in history.episodes.iter().step_by(stride) {
        println!(
            "{:7}, {:6.1}, {:16.3}, {:10.3}",
            log.episode, log.episode_return, log.mean_msp_utility, log.mean_price
        );
    }

    let eval = mechanism.evaluate(50);
    println!("\nDeterministic evaluation over 50 rounds:");
    println!(
        "  mean posted price   = {:.3} (equilibrium {:.3})",
        eval.mean_price, equilibrium.price
    );
    println!(
        "  mean MSP utility    = {:.3} ({:.1}% of the equilibrium utility)",
        eval.mean_msp_utility,
        100.0 * eval.equilibrium_ratio
    );
    println!(
        "  total bandwidth     = {:.4} MHz, total VMU utility = {:.3}",
        eval.mean_total_bandwidth_mhz, eval.mean_total_vmu_utility
    );
}
